/**
 * @file
 * A single stream buffer (Jouppi [10], Figure 2 of the paper): a FIFO
 * of prefetched cache-block tags with an adder that generates the next
 * prefetch address. The original design uses an incrementer (unit
 * stride); per Section 7 the incrementer is generalized to an adder
 * and a stride field so the buffer can follow constant non-unit
 * strides.
 *
 * This is a trace-driven model: block *data* is not stored, only the
 * tags and valid bits, plus the tick each prefetch was issued so the
 * optional timing model can tell whether the data would have returned
 * from memory by the time it is requested (the Section 8 caveat).
 */

#ifndef STREAMSIM_STREAM_STREAM_BUFFER_HH
#define STREAMSIM_STREAM_STREAM_BUFFER_HH

#include <cstdint>
#include <vector>

#include "mem/block.hh"
#include "mem/types.hh"

namespace sbsim {

/** Result of consuming the head entry of a stream. */
struct StreamConsume
{
    BlockAddr block = 0;     ///< Block supplied to the primary cache.
    std::uint64_t issueTick = 0; ///< When its prefetch was issued.
    bool refillIssued = false;   ///< A new tail prefetch was generated.
    BlockAddr refillBlock = 0;   ///< Block address of that prefetch.
    /** Additional refills (associative lookup only: one per bypassed
     *  entry, so the FIFO returns to full depth). */
    std::vector<BlockAddr> extraRefills;
};

/** Result of flushing a stream on reallocation. */
struct StreamFlush
{
    std::uint32_t uselessPrefetches = 0; ///< Unconsumed entries discarded.
    std::uint32_t hitRun = 0;            ///< Consecutive hits this stream
                                         ///< serviced since allocation.
    bool wasActive = false;
};

/**
 * One FIFO prefetch buffer. Entries always describe distinct cache
 * blocks; when the stride is smaller than a block the prefetch address
 * advances until it leaves the previously prefetched block.
 */
class StreamBuffer
{
  public:
    /**
     * @param depth Number of FIFO entries (the paper fixes 2).
     * @param block_size Cache block size in bytes.
     */
    StreamBuffer(std::uint32_t depth, std::uint32_t block_size);

    bool active() const { return active_; }
    std::int64_t stride() const { return stride_; }
    std::uint32_t depth() const { return depth_; }

    /** Consecutive hits serviced since the current allocation. */
    std::uint32_t hitRun() const { return hitRun_; }

    /**
     * Discard current contents and lock onto a new stream.
     *
     * @param miss_addr The primary-cache miss address that triggered
     *        allocation; prefetching starts at miss_addr + stride.
     * @param stride_bytes Prefetch stride in bytes (the block size for
     *        unit-stride streams); may be negative.
     * @param now Current tick for prefetch timestamps.
     * @param issued_out Filled with the block addresses prefetched.
     * @return Accounting for the discarded contents.
     */
    StreamFlush allocate(Addr miss_addr, std::int64_t stride_bytes,
                         std::uint64_t now,
                         std::vector<BlockAddr> &issued_out);

    /** True when the valid head entry holds the block containing @p a. */
    bool probeHead(Addr a) const { return probeHeadBlock(mapper_.blockBase(a)); }

    /** As probeHead() for a pre-computed block base address, so a
     *  caller probing many streams converts the address once. */
    bool
    probeHeadBlock(BlockAddr block) const
    {
        if (!active_ || count_ == 0)
            return false;
        const Entry &head = entries_[head_];
        return head.valid && head.block == block;
    }

    /**
     * Position (0 = head) of the valid entry holding the block of
     * @p a, or -1. Models Jouppi's quasi-sequential buffers, which
     * compare against every entry instead of just the head.
     */
    int probeAny(Addr a) const { return probeAnyBlock(mapper_.blockBase(a)); }

    /** As probeAny() for a pre-computed block base address. */
    int probeAnyBlock(BlockAddr block) const;

    /**
     * Pop the head (a stream hit) and prefetch one replacement block
     * at the tail. @pre probeHead(a) was true for the same address.
     */
    StreamConsume consumeHead(std::uint64_t now);

    /**
     * Consume the entry at @p position (from probeAny), discarding the
     * entries ahead of it — they were prefetched but bypassed.
     * Refills the FIFO to full depth.
     * @param skipped_out Incremented by the number of valid entries
     *        discarded ahead of the hit (wasted prefetches).
     */
    StreamConsume consumeAt(int position, std::uint64_t now,
                            std::uint32_t &skipped_out);

    /**
     * Invalidate any entry holding @p block (a write-back passed by on
     * its way to memory). Invalidated entries were wasted bandwidth.
     * @return number of entries invalidated.
     */
    std::uint32_t invalidate(BlockAddr block);

    /** Tear down without reallocating (end of simulation). */
    StreamFlush drain();

  private:
    struct Entry
    {
        BlockAddr block = 0;
        std::uint64_t issueTick = 0;
        bool valid = false;
    };

    /** Issue one prefetch at the tail; returns the block prefetched. */
    BlockAddr issuePrefetch(std::uint64_t now);

    /**
     * Structural invariant walk (checked builds only; see
     * util/audit.hh): head/count within range, inactive implies empty,
     * entries outside the [head, head+count) window invalid, and valid
     * window entries pairwise-distinct cache blocks.
     */
    void auditState() const;

    /** Reduce an index in [0, 2*depth_) into the circular buffer
     *  without the modulo (depth is tiny but not a power of two in
     *  general, so % would be a hardware divide on the hit path). */
    std::uint32_t
    wrap(std::uint32_t i) const
    {
        return i >= depth_ ? i - depth_ : i;
    }

    BlockMapper mapper_;
    std::uint32_t depth_;
    std::vector<Entry> entries_; ///< Circular buffer.
    std::uint32_t head_ = 0;
    std::uint32_t count_ = 0;

    bool active_ = false;
    std::int64_t stride_ = 0;
    Addr nextAddr_ = 0;       ///< Next prefetch (byte) address.
    BlockAddr lastBlock_ = 0; ///< Last block queued, for dedup.
    std::uint32_t hitRun_ = 0;
};

} // namespace sbsim

#endif // STREAMSIM_STREAM_STREAM_BUFFER_HH
