/**
 * @file
 * Non-unit-stride detection by address-space partitioning (Section 7,
 * Figures 6 and 7). The physical address is split into a tag and a
 * low-order *czone* (concentration zone) whose size is set at run time
 * (in hardware via a memory-mapped mask register). References whose
 * tags match fall in the same partition and are assumed to belong to
 * the same array; a per-partition finite state machine verifies that
 * three consecutive references are equally strided, and only then is a
 * stream allocated with that stride.
 *
 * FSM (Figure 7):
 *   INVALID --miss a--> META1 (last_addr = a)
 *   META1   --miss a--> META2 (stride = a - last_addr, last_addr = a)
 *   META2   --miss a--> allocate if a - last_addr == stride,
 *                       else stay in META2 with updated guess.
 */

#ifndef STREAMSIM_STREAM_CZONE_FILTER_HH
#define STREAMSIM_STREAM_CZONE_FILTER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/types.hh"
#include "util/stats.hh"

namespace sbsim {

/** A verified strided stream ready for allocation. */
struct StrideAllocation
{
    Addr startAddr = 0;      ///< First address to prefetch from.
    std::int64_t stride = 0; ///< Verified stride in bytes.
};

/** Partition-based constant-stride detector. */
class CzoneFilter
{
  public:
    /**
     * @param entries Number of partition slots (paper: 16).
     * @param czone_bits Low-order bits forming the concentration zone;
     *        references sharing the remaining high (tag) bits fall in
     *        the same partition.
     */
    CzoneFilter(std::uint32_t entries, unsigned czone_bits);

    unsigned czoneBits() const { return czoneBits_; }

    /** Adjust the czone size at run time (the memory-mapped mask). */
    void setCzoneBits(unsigned bits);

    /**
     * Process a miss that eluded the unit-stride filter. Advances the
     * partition's FSM; returns an allocation when a constant stride
     * has been verified by three references (the entry is then freed).
     */
    std::optional<StrideAllocation> onMiss(Addr a);

    std::uint64_t lookups() const { return lookups_.value(); }
    std::uint64_t allocations() const { return allocations_.value(); }

    void reset();

  private:
    enum class State : std::uint8_t
    {
        META1, ///< One reference seen.
        META2, ///< Stride guess recorded, awaiting verification.
    };

    struct Slot
    {
        Addr tag = 0;
        Addr lastAddr = 0;
        std::int64_t stride = 0;
        std::uint64_t tick = 0;
        State state = State::META1;
        bool valid = false;
    };

    Addr tagOf(Addr a) const { return a >> czoneBits_; }
    Slot *find(Addr tag);
    Slot &victim();

    /**
     * Structural invariant walk (checked builds only; see
     * util/audit.hh): valid partitions have distinct tags (find()
     * assumes at most one match) and LRU ticks bounded by the clock.
     */
    void auditState() const;

    std::vector<Slot> slots_;
    unsigned czoneBits_;
    std::uint64_t tick_ = 0;
    Counter lookups_;
    Counter allocations_;
};

} // namespace sbsim

#endif // STREAMSIM_STREAM_CZONE_FILTER_HH
