#include "stream_buffer.hh"

#include "util/audit.hh"
#include "util/logging.hh"

namespace sbsim {

StreamBuffer::StreamBuffer(std::uint32_t depth, std::uint32_t block_size)
    : mapper_(block_size), depth_(depth), entries_(depth)
{
    SBSIM_ASSERT(depth > 0, "stream depth must be nonzero");
}

void
StreamBuffer::auditState() const
{
    SBSIM_ASSERT(head_ < depth_, "head ", head_, " out of range");
    SBSIM_ASSERT(count_ <= depth_, "count ", count_, " over depth ",
                 depth_);
    SBSIM_ASSERT(active_ || count_ == 0,
                 "inactive stream holds ", count_, " entries");
    // The conditional-wrap fast path (wrap() instead of %) is only
    // correct if indices stay in [0, 2*depth): walk every slot and
    // check the window structure it is supposed to preserve.
    for (std::uint32_t i = 0; i < depth_; ++i) {
        // Is slot i inside the circular window [head_, head_+count_)?
        std::uint32_t offset = i >= head_ ? i - head_ : i + depth_ - head_;
        bool in_window = offset < count_;
        if (!in_window) {
            SBSIM_ASSERT(!entries_[i].valid, "valid entry at slot ", i,
                         " outside window [", head_, ", ", head_, "+",
                         count_, ")");
        }
    }
    for (std::uint32_t i = 0; i < count_; ++i) {
        const Entry &a = entries_[wrap(head_ + i)];
        if (!a.valid)
            continue;
        for (std::uint32_t j = i + 1; j < count_; ++j) {
            const Entry &b = entries_[wrap(head_ + j)];
            SBSIM_ASSERT(!b.valid || a.block != b.block,
                         "duplicate block ", a.block,
                         " in stream FIFO positions ", i, "/", j);
        }
    }
}

BlockAddr
StreamBuffer::issuePrefetch(std::uint64_t now)
{
    SBSIM_ASSERT(count_ < depth_, "prefetch into a full stream");
    // Advance until the prefetch address leaves the last queued block,
    // so every FIFO entry names a distinct cache block even when the
    // stride is smaller than a block.
    BlockAddr block = mapper_.blockBase(nextAddr_);
    while (block == lastBlock_) {
        nextAddr_ += static_cast<Addr>(stride_);
        block = mapper_.blockBase(nextAddr_);
    }
    nextAddr_ += static_cast<Addr>(stride_);
    lastBlock_ = block;

    std::uint32_t slot = wrap(head_ + count_);
    entries_[slot] = {block, now, true};
    ++count_;
    return block;
}

StreamFlush
StreamBuffer::allocate(Addr miss_addr, std::int64_t stride_bytes,
                       std::uint64_t now, std::vector<BlockAddr> &issued_out)
{
    SBSIM_ASSERT(stride_bytes != 0, "stream stride must be nonzero");

    StreamFlush flushed = drain();

    active_ = true;
    stride_ = stride_bytes;
    nextAddr_ = miss_addr + static_cast<Addr>(stride_);
    lastBlock_ = mapper_.blockBase(miss_addr);
    hitRun_ = 0;

    for (std::uint32_t i = 0; i < depth_; ++i)
        issued_out.push_back(issuePrefetch(now));
#ifdef STREAMSIM_CHECKED
    auditState();
#endif
    return flushed;
}

int
StreamBuffer::probeAnyBlock(BlockAddr block) const
{
    if (!active_)
        return -1;
    for (std::uint32_t i = 0; i < count_; ++i) {
        const Entry &e = entries_[wrap(head_ + i)];
        if (e.valid && e.block == block)
            return static_cast<int>(i);
    }
    return -1;
}

StreamConsume
StreamBuffer::consumeHead(std::uint64_t now)
{
    SBSIM_ASSERT(active_ && count_ > 0 && entries_[head_].valid,
                 "consumeHead without a valid head");
    StreamConsume result;
    result.block = entries_[head_].block;
    result.issueTick = entries_[head_].issueTick;

    entries_[head_].valid = false;
    head_ = wrap(head_ + 1);
    --count_;
    ++hitRun_;

    result.refillBlock = issuePrefetch(now);
    result.refillIssued = true;
#ifdef STREAMSIM_CHECKED
    auditState();
#endif
    return result;
}

StreamConsume
StreamBuffer::consumeAt(int position, std::uint64_t now,
                        std::uint32_t &skipped_out)
{
    SBSIM_ASSERT(position >= 0 &&
                     static_cast<std::uint32_t>(position) < count_,
                 "consumeAt out of range");
    // Discard bypassed entries ahead of the hit.
    for (int i = 0; i < position; ++i) {
        Entry &e = entries_[head_];
        if (e.valid)
            ++skipped_out;
        e.valid = false;
        head_ = wrap(head_ + 1);
        --count_;
    }

    StreamConsume result;
    result.block = entries_[head_].block;
    result.issueTick = entries_[head_].issueTick;
    entries_[head_].valid = false;
    head_ = wrap(head_ + 1);
    --count_;
    ++hitRun_;

    // Refill the FIFO to full depth.
    result.refillBlock = issuePrefetch(now);
    result.refillIssued = true;
    while (count_ < depth_)
        result.extraRefills.push_back(issuePrefetch(now));
#ifdef STREAMSIM_CHECKED
    auditState();
#endif
    return result;
}

std::uint32_t
StreamBuffer::invalidate(BlockAddr block)
{
    if (!active_)
        return 0;
    std::uint32_t n = 0;
    for (std::uint32_t i = 0; i < count_; ++i) {
        Entry &e = entries_[wrap(head_ + i)];
        if (e.valid && e.block == block) {
            e.valid = false;
            ++n;
        }
    }
#ifdef STREAMSIM_CHECKED
    auditState();
#endif
    return n;
}

StreamFlush
StreamBuffer::drain()
{
    StreamFlush result;
    result.wasActive = active_;
    result.hitRun = hitRun_;
    for (std::uint32_t i = 0; i < count_; ++i) {
        Entry &e = entries_[wrap(head_ + i)];
        if (e.valid)
            ++result.uselessPrefetches;
        e.valid = false;
    }
    head_ = 0;
    count_ = 0;
    active_ = false;
    stride_ = 0;
    hitRun_ = 0;
#ifdef STREAMSIM_CHECKED
    auditState();
#endif
    return result;
}

} // namespace sbsim
