/**
 * @file
 * The stream-buffer prefetch engine: composes the multi-way stream set
 * with the unit-stride allocation filter (Section 6) and a non-unit
 * stride detector (Section 7), and keeps the statistics the paper
 * reports — stream hit rate, extra bandwidth (EB) and the stream
 * length distribution (Table 3).
 *
 * Reference handling on every primary-cache miss:
 *   1. compare the miss address against every stream head; on a hit
 *      the block moves to the primary cache and the stream prefetches
 *      one replacement block;
 *   2. on a stream miss, decide whether to (re)allocate a stream:
 *      - ALWAYS policy: reallocate the LRU stream at the miss target
 *        (Jouppi's original behaviour, Section 5);
 *      - UNIT_FILTER policy: allocate only when the unit-stride filter
 *        verifies misses to two consecutive blocks; references that
 *        also miss in the unit filter optionally fall through to the
 *        czone or minimum-delta stride detector.
 */

#ifndef STREAMSIM_STREAM_PREFETCH_ENGINE_HH
#define STREAMSIM_STREAM_PREFETCH_ENGINE_HH

#include <cstdint>
#include <memory>
#include <optional>

#include "mem/block.hh"
#include "mem/types.hh"
#include "stream/czone_filter.hh"
#include "stream/min_delta.hh"
#include "stream/stream_set.hh"
#include "stream/unit_filter.hh"
#include "util/event_trace.hh"
#include "util/stats.hh"

namespace sbsim {

/** When is a stream (re)allocated on a stream miss? */
enum class AllocationPolicy : std::uint8_t
{
    ALWAYS,      ///< Every stream miss reallocates (Section 5).
    UNIT_FILTER, ///< Only after two consecutive-block misses (Sec. 6).
};

/** Which non-unit-stride detector backs the unit filter? */
enum class StrideDetection : std::uint8_t
{
    NONE,
    CZONE,     ///< Partition scheme of Section 7.
    MIN_DELTA, ///< Alternative scheme of Section 7.
};

/** Static configuration of the prefetch engine. */
struct StreamEngineConfig
{
    std::uint32_t numStreams = 10;
    std::uint32_t depth = 2;       ///< Paper default (Section 3).
    std::uint32_t blockSize = 32;
    /** Victim choice on reallocation (paper: LRU; Section 3). */
    StreamReplacement replacement = StreamReplacement::LRU;
    AllocationPolicy allocation = AllocationPolicy::ALWAYS;
    std::uint32_t unitFilterEntries = 16;
    StrideDetection strideDetection = StrideDetection::NONE;
    std::uint32_t strideFilterEntries = 16;
    unsigned czoneBits = 18;
    std::uint64_t minDeltaMaxStride = 1 << 20;
    /** Split streams into separate I and D banks (ablation; the paper
     *  found this not beneficial). */
    bool partitioned = false;
    /**
     * Match non-head FIFO entries too (Jouppi's quasi-sequential
     * variant; ablation). The paper uses head-only comparison, which
     * needs one comparator per stream instead of one per entry.
     */
    bool associativeLookup = false;
};

/** Outcome of presenting one primary-cache miss to the engine. */
struct EngineOutcome
{
    bool streamHit = false;
    std::uint64_t issueTick = 0;      ///< When the hit block's prefetch
                                      ///< was issued (timing model).
    std::uint32_t prefetchesIssued = 0; ///< New blocks sent to memory.
    bool allocated = false;           ///< A stream was (re)allocated.
};

/** Aggregated engine statistics. */
struct StreamEngineStats
{
    std::uint64_t lookups = 0;       ///< Primary-cache misses seen.
    std::uint64_t hits = 0;          ///< Stream hits.
    std::uint64_t streamMisses = 0;  ///< Missed streams too.
    std::uint64_t allocations = 0;
    std::uint64_t prefetchesIssued = 0;
    std::uint64_t uselessFlushed = 0;
    std::uint64_t uselessInvalidated = 0;

    double hitRatePercent() const { return percent(hits, lookups); }

    /** Useless prefetched blocks as % of the program's own demand
     *  fetches — the paper's EB metric. */
    double
    extraBandwidthPercent() const
    {
        return percent(uselessFlushed + uselessInvalidated, lookups);
    }
};

/** Stream buffers + filters + accounting. */
class PrefetchEngine
{
  public:
    explicit PrefetchEngine(const StreamEngineConfig &config);

    const StreamEngineConfig &config() const { return config_; }

    /**
     * Present one primary-cache miss.
     * @param access The missing reference.
     * @param now Simulation tick (for prefetch timestamps).
     */
    EngineOutcome onPrimaryMiss(const MemAccess &access, std::uint64_t now);

    /**
     * Block addresses of the prefetches issued by the most recent
     * onPrimaryMiss call (matches EngineOutcome::prefetchesIssued).
     * The memory side uses these to route prefetches through a
     * secondary cache and onto the bus.
     */
    const std::vector<BlockAddr> &lastIssuedBlocks() const
    {
        return lastIssued_;
    }

    /** A write-back is passing to memory: invalidate stale copies. */
    void onWriteback(BlockAddr block);

    /**
     * Attach an opt-in structural event trace (caller-owned; must
     * outlive the engine). Records filter verdicts, czone partition
     * assignments, stream allocations and flushes. nullptr detaches.
     */
    void setEventTrace(EventTrace *trace) { events_ = trace; }

    /**
     * Flush all streams and fold the leftovers into the statistics.
     * Call once at end of simulation before reading stats.
     */
    void finalize();

    /** Adjust the czone size at run time (Figure 9 sweep). */
    void setCzoneBits(unsigned bits);

    const StreamEngineStats &engineStats() const { return stats_; }

    /** Distribution of stream lengths, weighted by hits (Table 3). */
    const BucketedDistribution &lengthDistribution() const
    {
        return lengthDist_;
    }

    /** The unit filter, when configured (tests / reporting). */
    const UnitStrideFilter *unitFilter() const { return unitFilter_.get(); }
    const CzoneFilter *czoneFilter() const { return czoneFilter_.get(); }
    const MinDeltaDetector *minDelta() const { return minDelta_.get(); }

    /** Export counters for reporting. */
    StatGroup stats() const;

    void reset();

  private:
    StreamSet &setFor(const MemAccess &access);

    /**
     * Reallocate a stream of @p set at @p start with @p stride,
     * issuing prefetches into lastIssued_ (which the caller has
     * cleared) and folding the accounting into @p outcome.
     */
    void allocateStream(StreamSet &set, Addr start, std::int64_t stride,
                        std::uint64_t now, EngineOutcome &outcome);

    void recordRun(const StreamFlush &flushed, std::uint64_t now);

    StreamEngineConfig config_;
    BlockMapper mapper_;
    std::unique_ptr<StreamSet> dataStreams_;
    std::unique_ptr<StreamSet> instStreams_; ///< Only when partitioned.
    std::unique_ptr<UnitStrideFilter> unitFilter_;
    std::unique_ptr<CzoneFilter> czoneFilter_;
    std::unique_ptr<MinDeltaDetector> minDelta_;

    StreamEngineStats stats_;
    BucketedDistribution lengthDist_;
    std::vector<BlockAddr> lastIssued_;
    EventTrace *events_ = nullptr;
    /** Tick of the most recent onPrimaryMiss; timestamps the flush
     *  events finalize() emits for the streams still alive at EOF. */
    std::uint64_t lastTick_ = 0;
    bool finalized_ = false;
};

} // namespace sbsim

#endif // STREAMSIM_STREAM_PREFETCH_ENGINE_HH
