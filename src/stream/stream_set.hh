/**
 * @file
 * A bank of stream buffers searched in parallel (Section 3 of the
 * paper): the primary-cache miss address is compared with the head of
 * every stream; on a hit the block moves to the primary cache, and on
 * allocation the least-recently-used stream is flushed and reset.
 */

#ifndef STREAMSIM_STREAM_STREAM_SET_HH
#define STREAMSIM_STREAM_STREAM_SET_HH

#include <cstdint>
#include <vector>

#include "stream/stream_buffer.hh"
#include "util/random.hh"

namespace sbsim {

/**
 * How the stream to reallocate on a stream miss is chosen. The paper
 * assumes LRU (Section 3); FIFO (round-robin) and random are provided
 * for the ablation study.
 */
enum class StreamReplacement : std::uint8_t
{
    LRU,
    FIFO,
    RANDOM,
};

/** Short text name for a stream replacement kind. */
inline const char *
toString(StreamReplacement k)
{
    switch (k) {
      case StreamReplacement::LRU: return "lru";
      case StreamReplacement::FIFO: return "fifo";
      case StreamReplacement::RANDOM: return "random";
    }
    return "?";
}

/** Result of a stream-set lookup. */
struct StreamLookup
{
    bool hit = false;
    std::uint32_t stream = 0;        ///< Which stream hit.
    StreamConsume consume;           ///< Head consumption details.
    /** Entries bypassed and discarded ahead of an associative hit. */
    std::uint32_t skipped = 0;
};

/** Result of allocating a stream for a new miss. */
struct StreamAllocation
{
    std::uint32_t stream = 0;        ///< Stream that was reallocated.
    StreamFlush flushed;             ///< What the reallocation discarded.
    std::vector<BlockAddr> issued;   ///< Prefetches sent to memory.
};

/** Multi-way stream buffers with LRU reallocation. */
class StreamSet
{
  public:
    /**
     * @param num_streams Number of parallel streams (paper: up to 10).
     * @param depth Entries per stream (paper: 2).
     * @param block_size Cache block size in bytes.
     * @param replacement Victim choice on reallocation (paper: LRU).
     */
    StreamSet(std::uint32_t num_streams, std::uint32_t depth,
              std::uint32_t block_size,
              StreamReplacement replacement = StreamReplacement::LRU);

    std::uint32_t numStreams() const { return numStreams_; }

    /**
     * Compare @p a against every stream head; consume on a hit. The
     * hitting stream becomes most recently used.
     * @param associative Also match non-head entries (Jouppi's
     *        quasi-sequential variant), discarding bypassed ones.
     */
    StreamLookup lookup(Addr a, std::uint64_t now,
                        bool associative = false);

    /**
     * Reallocate the LRU stream to prefetch from @p miss_addr with the
     * given stride. The new stream becomes most recently used.
     */
    StreamAllocation allocate(Addr miss_addr, std::int64_t stride_bytes,
                              std::uint64_t now);

    /**
     * As allocate(), but appends the issued prefetches to
     * @p issued_out so a caller on the per-miss hot path can reuse one
     * buffer instead of receiving a freshly allocated vector.
     * @return the stream that was reallocated.
     */
    std::uint32_t allocate(Addr miss_addr, std::int64_t stride_bytes,
                           std::uint64_t now,
                           std::vector<BlockAddr> &issued_out,
                           StreamFlush &flushed_out);

    /**
     * Invalidate stale copies of @p block in every stream (write-back
     * passing by on its way to memory).
     * @return number of entries invalidated.
     */
    std::uint32_t invalidate(BlockAddr block);

    /** Flush every stream; used at end of simulation. */
    std::vector<StreamFlush> drainAll();

    /** Access to an individual stream (tests, reporting). */
    const StreamBuffer &stream(std::uint32_t i) const { return streams_.at(i); }

  private:
    std::uint32_t victimStream();

    /**
     * Structural invariant walk (checked builds only; see
     * util/audit.hh): LRU timestamps bounded by the clock and
     * pairwise-distinct when nonzero, rotation pointer in range.
     */
    void auditState() const;

    BlockMapper mapper_;
    std::uint32_t numStreams_;
    StreamReplacement replacement_;
    std::vector<StreamBuffer> streams_;
    std::vector<std::uint64_t> lastUse_;
    std::uint64_t tick_ = 0;
    std::uint32_t nextVictim_ = 0; ///< FIFO rotation pointer.
    Pcg32 rng_{0x5eedf00d};        ///< RANDOM victim choice.
};

} // namespace sbsim

#endif // STREAMSIM_STREAM_STREAM_SET_HH
