/**
 * @file
 * Reproduces Figure 8: stream hit rate with unit-stride-only streams
 * (16-entry unit filter) versus constant-stride detection added (a
 * 16-entry czone filter behind the unit filter). The paper's key
 * gains: fftpde 26->71, appsp 33->65, trfd 50->65; minor elsewhere.
 */

#include <iostream>

#include "bench_common.hh"
#include "util/table.hh"

using namespace sbsim;

int
main()
{
    std::cout << "Figure 8: non-unit stride detection\n"
              << "(10 streams, 16-entry unit filter; czone filter of 16 "
                 "entries, czone = 18 bits)\n\n";

    TablePrinter table({"name", "unit_only", "const_stride", "gain"});

    MemorySystemConfig unit_only =
        paperSystemConfig(10, AllocationPolicy::UNIT_FILTER);
    MemorySystemConfig with_czone = paperSystemConfig(
        10, AllocationPolicy::UNIT_FILTER, StrideDetection::CZONE, 18);

    for (const Benchmark &b : allBenchmarks()) {
        RunOutput base =
            bench::runBenchmark(b.name, ScaleLevel::DEFAULT, unit_only);
        RunOutput czone =
            bench::runBenchmark(b.name, ScaleLevel::DEFAULT, with_czone);
        double h0 = base.engineStats.hitRatePercent();
        double h1 = czone.engineStats.hitRatePercent();
        table.addRow({b.name, fmt(h0, 1), fmt(h1, 1), fmt(h1 - h0, 1)});
    }
    table.print(std::cout);

    std::cout << "\nPaper spot checks: fftpde 26->71, appsp 33->65, "
                 "trfd 50->65; gains in other benchmarks are minor.\n";
    return 0;
}
