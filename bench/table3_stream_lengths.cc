/**
 * @file
 * Reproduces Table 3: distribution of stream lengths — what share of
 * all stream hits came from streams that delivered 1-5, 6-10, 11-15,
 * 16-20 or more than 20 hits before the pattern broke. Ten streams,
 * no filter (as in the paper's Section 6 discussion). Benchmarks with
 * a heavy 1-5 bucket (appbt!) are the ones the unit-stride filter
 * hurts.
 */

#include <iostream>

#include "bench_common.hh"
#include "util/table.hh"

using namespace sbsim;

int
main()
{
    std::cout << "Table 3: distribution of stream lengths (% of hits)\n"
              << "(10 streams, depth 2, no filter)\n\n";

    TablePrinter table({"name", "1-5", "6-10", "11-15", "16-20", ">20",
                        "paper_1-5", "paper_>20"});
    MemorySystemConfig config = paperSystemConfig(10);

    for (const Benchmark &b : allBenchmarks()) {
        RunOutput out =
            bench::runBenchmark(b.name, ScaleLevel::DEFAULT, config);
        std::vector<std::string> row = {b.name};
        for (double share : out.lengthSharesPercent)
            row.push_back(fmt(share, 0));
        while (row.size() < 6)
            row.push_back("-");
        auto ref = bench::paperReference(b.name);
        row.push_back(ref ? fmt(ref->table3Short, 0) : "-");
        row.push_back(ref ? fmt(ref->table3Long, 0) : "-");
        table.addRow(row);
    }
    table.print(std::cout);
    return 0;
}
