/**
 * @file
 * Reproduces Figure 9: stream hit rate versus czone size for the
 * three benchmarks with significant non-unit-stride references
 * (appsp, fftpde, trfd), 10 streams. The paper's shape: fftpde is
 * only effective in a 16-23 bit window (below, three strided
 * references do not share a partition; above, concurrent streams
 * collide in one partition), while appsp and trfd keep working up to
 * large czones.
 */

#include <iostream>

#include "bench_common.hh"
#include "util/table.hh"

using namespace sbsim;

int
main()
{
    std::cout << "Figure 9: hit-rate sensitivity to czone size\n"
              << "(10 streams, 16-entry unit filter + 16-entry czone "
                 "filter)\n\n";

    const std::vector<unsigned> czone_bits = {10, 12, 14, 16, 18,
                                              20, 22, 24, 26};
    std::vector<std::string> headers = {"name"};
    for (unsigned bits : czone_bits)
        headers.push_back("cz" + std::to_string(bits));
    TablePrinter table(headers);

    for (const char *name : {"appsp", "fftpde", "trfd"}) {
        std::vector<std::string> row = {name};
        for (unsigned bits : czone_bits) {
            MemorySystemConfig config =
                paperSystemConfig(10, AllocationPolicy::UNIT_FILTER,
                                  StrideDetection::CZONE, bits);
            RunOutput out =
                bench::runBenchmark(name, ScaleLevel::DEFAULT, config);
            row.push_back(fmt(out.engineStats.hitRatePercent(), 1));
        }
        table.addRow(row);
    }
    table.print(std::cout);

    std::cout << "\nPaper shape: fftpde effective only for ~16-23 bit "
                 "czones; appsp and trfd also work with large czones.\n";
    return 0;
}
