/**
 * @file
 * Reproduces Figure 9: stream hit rate versus czone size for the
 * three benchmarks with significant non-unit-stride references
 * (appsp, fftpde, trfd), 10 streams. The paper's shape: fftpde is
 * only effective in a 16-23 bit window (below, three strided
 * references do not share a partition; above, concurrent streams
 * collide in one partition), while appsp and trfd keep working up to
 * large czones.
 *
 * The 3 x 9 grid runs through the parallel SweepRunner.
 */

#include <iostream>

#include "bench_common.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace sbsim;

int
main()
{
    std::cout << "Figure 9: hit-rate sensitivity to czone size\n"
              << "(10 streams, 16-entry unit filter + 16-entry czone "
                 "filter)\n\n";

    const std::vector<const char *> names = {"appsp", "fftpde", "trfd"};
    const std::vector<unsigned> czone_bits = {10, 12, 14, 16, 18,
                                              20, 22, 24, 26};
    std::vector<std::string> headers = {"name"};
    for (unsigned bits : czone_bits)
        headers.push_back("cz" + std::to_string(bits));

    std::vector<SweepJob> jobs;
    jobs.reserve(names.size() * czone_bits.size());
    for (const char *name : names) {
        for (unsigned bits : czone_bits) {
            MemorySystemConfig config =
                paperSystemConfig(10, AllocationPolicy::UNIT_FILTER,
                                  StrideDetection::CZONE, bits);
            jobs.push_back(
                bench::job(name, ScaleLevel::DEFAULT, config,
                           std::string(name) + ":cz" +
                               std::to_string(bits)));
        }
    }

    SweepRunner runner;
    double wall = 0;
    std::vector<SweepResult> results;
    {
        ScopedTimer timer(wall);
        results = runner.run(jobs);
    }

    TablePrinter table(headers);
    for (std::size_t ni = 0; ni < names.size(); ++ni) {
        std::vector<std::string> row = {names[ni]};
        for (std::size_t ci = 0; ci < czone_bits.size(); ++ci) {
            const RunOutput &out =
                results[ni * czone_bits.size() + ci].output;
            row.push_back(fmt(out.engineStats.hitRatePercent(), 1));
        }
        table.addRow(row);
    }
    table.print(std::cout);

    std::cout << "\nPaper shape: fftpde effective only for ~16-23 bit "
                 "czones; appsp and trfd also work with large czones.\n";

    bench::ThroughputLog log;
    log.record(results);
    log.print(std::cout, wall, runner.jobs());
    return 0;
}
