/**
 * @file
 * Reproduces Table 4: stream buffers versus secondary caches as the
 * input scales. For each of appsp, appbt, applu, cgm and mgrid at two
 * input sizes, measure the stream hit rate (10 streams, 16-entry unit
 * filter backed by a 16-entry czone filter — the paper's full
 * configuration) and find the minimum secondary cache size (64 KB to
 * 4 MB, associativity 1-4, block 64/128 B, set-sampled) whose local
 * hit rate matches it. The paper's shape: stream hit rate typically
 * *improves* with input size while the matching L2 size grows with
 * the data set — except cgm, whose irregular large input favours the
 * cache.
 *
 * Both halves of the study are parallel: the ten stream runs go
 * through the SweepRunner, and the ten set-sampled L2 studies fan out
 * over the same worker budget via parallelFor.
 *
 * Both halves also share one front end per (benchmark, input) pair,
 * so with the trace cache on each workload is generated and pushed
 * through the L1 exactly once: the recorded miss trace is replayed by
 * the stream half (SweepJob::missTrace) and its DEMAND records feed
 * the candidate battery directly (replayMissesInto). SBSIM_TRACE_CACHE=0
 * restores the naive twice-through-everything path.
 *
 * With the trace cache on, the one-pass analytic engine
 * (AnalyticCacheStudy) also prices the whole candidate grid from each
 * miss trace, timed against both simulated backends: the exact
 * (unsampled) battery it reproduces, and the 1/8 set-sampled battery
 * the table uses. The closing report gives both speedups and the
 * worst hit-rate deviation against each, over every (benchmark,
 * input, candidate) point.
 */

#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_common.hh"
#include "sim/l2_study.hh"
#include "trace/time_sampler.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace sbsim;

namespace {

MemorySystemConfig
fullStreamConfig()
{
    return paperSystemConfig(10, AllocationPolicy::UNIT_FILTER,
                             StrideDetection::CZONE, 18);
}

std::vector<L2Result>
l2HitRates(const std::string &name, ScaleLevel level)
{
    const Benchmark &b = findBenchmark(name);
    auto workload = b.makeWorkload(level);
    TruncatingSource limited(*workload, bench::refLimit());
    L2StudyDriver driver(SplitCacheConfig::paperDefault(),
                         table4CandidateConfigs(), /*sample_log2=*/3);
    driver.run(limited);
    return driver.study().results();
}

struct PaperRow
{
    const char *small_input;
    const char *large_input;
    int small_hit, large_hit;
    const char *small_l2, *large_l2;
};

PaperRow
paperRow(const std::string &name)
{
    if (name == "appsp")
        return {"12^3", "24^3", 43, 65, "128 KB", "1 MB"};
    if (name == "appbt")
        return {"12^3", "24^3", 50, 52, "512 KB", "2 MB"};
    if (name == "applu")
        return {"12^3", "24^3", 62, 73, "1 MB", "2 MB"};
    if (name == "cgm")
        return {"1400", "5600", 85, 51, "1 MB", "64 KB"};
    return {"32^3", "64^3", 76, 88, "2 MB", "4 MB"}; // mgrid
}

} // namespace

int
main()
{
    std::cout << "Table 4: stream buffers versus secondary cache\n"
              << "(streams: 10 + 16-entry unit filter + 16-entry czone "
                 "filter; L2: 64KB-4MB, assoc 1-4, block 64/128B, "
                 "set-sampled 1/8)\n\n";

    const std::vector<const char *> names = {"appsp", "appbt", "applu",
                                             "cgm", "mgrid"};
    const std::vector<ScaleLevel> levels = {ScaleLevel::SMALL,
                                            ScaleLevel::LARGE};

    // (name, level) pairs in row order.
    std::vector<SweepJob> stream_jobs;
    for (const char *name : names) {
        for (ScaleLevel level : levels) {
            stream_jobs.push_back(
                bench::job(name, level, fullStreamConfig()));
        }
    }

    SweepRunner runner;
    const bool cached = runner.traceCacheEnabled();
    double wall = 0;
    double l2_sim_wall = 0;
    double l2_exact_wall = 0;
    double l2_ana_wall = 0;
    std::vector<std::shared_ptr<const MissTrace>> misses(
        stream_jobs.size());
    std::vector<SweepResult> stream_results;
    std::vector<std::vector<L2Result>> l2_results(stream_jobs.size());
    std::vector<std::vector<L2Result>> exact_results(stream_jobs.size());
    std::vector<std::vector<L2Result>> ana_results(stream_jobs.size());
    {
        ScopedTimer timer(wall);
        if (cached) {
            // One recording per (benchmark, input): the stream half
            // replays it below and the L2 half consumes its DEMAND
            // records, so the cached path also guarantees both halves
            // see exactly the same reference stream.
            parallelFor(stream_jobs.size(), runner.jobs(),
                        [&](std::size_t i) {
                            SweepJob &job = stream_jobs[i];
                            misses[i] =
                                TraceCache::instance().getOrRecord(
                                    missTraceKey(job.sourceKey,
                                                 job.config),
                                    [&job] {
                                        auto src = job.makeSource();
                                        return recordMissTrace(
                                            *src, job.config);
                                    });
                            job.missTrace = misses[i];
                        });
        }
        stream_results = runner.run(stream_jobs);
        {
            ScopedTimer l2_timer(l2_sim_wall);
            parallelFor(stream_jobs.size(), runner.jobs(),
                        [&](std::size_t i) {
                            if (cached) {
                                SecondaryCacheStudy study(
                                    table4CandidateConfigs(),
                                    /*sample_log2=*/3);
                                replayMissesInto(study, *misses[i]);
                                l2_results[i] = study.results();
                                return;
                            }
                            l2_results[i] = l2HitRates(
                                names[i / levels.size()],
                                levels[i % levels.size()]);
                        });
        }
        if (cached) {
            // Exact baseline: the unsampled battery the analytic
            // engine reproduces (the differential tests' reference).
            {
                ScopedTimer l2_timer(l2_exact_wall);
                parallelFor(stream_jobs.size(), runner.jobs(),
                            [&](std::size_t i) {
                                SecondaryCacheStudy study(
                                    table4CandidateConfigs(),
                                    /*sample_log2=*/0);
                                replayMissesInto(study, *misses[i]);
                                exact_results[i] = study.results();
                            });
            }
            // Analytic half: same traces, same grid, one profiling
            // pass each instead of 42 simulated caches.
            ScopedTimer l2_timer(l2_ana_wall);
            parallelFor(stream_jobs.size(), runner.jobs(),
                        [&](std::size_t i) {
                            AnalyticCacheStudy study(
                                table4CandidateConfigs());
                            profileMissesInto(study, *misses[i]);
                            ana_results[i] = study.results();
                        });
        }
    }

    TablePrinter table({"name", "input", "stream_hit_%", "min_L2",
                        "paper_hit_%", "paper_L2"});

    for (std::size_t ni = 0; ni < names.size(); ++ni) {
        PaperRow ref = paperRow(names[ni]);
        for (std::size_t li = 0; li < levels.size(); ++li) {
            bool small = levels[li] == ScaleLevel::SMALL;
            std::size_t idx = ni * levels.size() + li;
            double hit = stream_results[idx]
                             .output.engineStats.hitRatePercent();
            auto min_size = minSizeReaching(l2_results[idx], hit);
            table.addRow(
                {names[ni], small ? ref.small_input : ref.large_input,
                 fmt(hit, 1),
                 min_size ? fmtBytes(*min_size) : std::string(">4 MB"),
                 fmt(double(small ? ref.small_hit : ref.large_hit), 0),
                 small ? ref.small_l2 : ref.large_l2});
        }
    }
    table.print(std::cout);

    if (cached) {
        double worst_exact = 0;
        double worst_sampled = 0;
        for (std::size_t i = 0; i < l2_results.size(); ++i) {
            for (std::size_t j = 0; j < l2_results[i].size(); ++j) {
                double ana = ana_results[i][j].localHitRatePercent;
                worst_exact = std::max(
                    worst_exact,
                    std::abs(exact_results[i][j].localHitRatePercent -
                             ana));
                worst_sampled = std::max(
                    worst_sampled,
                    std::abs(l2_results[i][j].localHitRatePercent - ana));
            }
        }
        std::cout << "\nanalytic L2 engine: grid priced in "
                  << fmt(l2_ana_wall, 3) << " s\n  vs exact battery    "
                  << fmt(l2_exact_wall, 3) << " s ("
                  << fmt(l2_ana_wall > 0 ? l2_exact_wall / l2_ana_wall : 0,
                         1)
                  << "x), worst deviation " << fmt(worst_exact, 4)
                  << " points\n  vs sampled battery  "
                  << fmt(l2_sim_wall, 3) << " s ("
                  << fmt(l2_ana_wall > 0 ? l2_sim_wall / l2_ana_wall : 0, 1)
                  << "x), worst deviation " << fmt(worst_sampled, 2)
                  << " points (set-sampling noise)\n";
    }

    bench::ThroughputLog log;
    log.record(stream_results);
    log.print(std::cout, wall, runner.jobs());
    return 0;
}
