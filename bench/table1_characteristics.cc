/**
 * @file
 * Reproduces Table 1: benchmark characteristics — suite, description,
 * input, data-set size, primary data-cache miss rate and data misses
 * per instruction, measured on the paper's 64K I + 64K D 4-way
 * random-replacement primary caches.
 *
 * The synthetic workloads preserve the *ordering* of miss rates (the
 * PERFECT codes miss far less than the NAS codes) rather than the
 * absolute values, which depended on full multi-billion-instruction
 * runs.
 */

#include <iostream>

#include "bench_common.hh"
#include "util/table.hh"

using namespace sbsim;

int
main()
{
    std::cout << "Table 1: Benchmark characteristics\n"
              << "(64KB I + 64KB D, 4-way, random replacement, "
                 "write-back/write-allocate)\n\n";

    TablePrinter table({"name", "suite", "input", "dataset",
                        "miss_rate_%", "MPI_%", "paper_miss_%",
                        "paper_MPI_%"});

    // Paper Table 1 columns 5 and 6.
    auto paper = [](const std::string &n) -> std::pair<double, double> {
        if (n == "embar") return {0.28, 0.10};
        if (n == "mgrid") return {0.84, 0.08};
        if (n == "cgm") return {3.33, 1.43};
        if (n == "fftpde") return {3.08, 0.50};
        if (n == "is") return {0.53, 0.20};
        if (n == "appsp") return {2.24, 0.38};
        if (n == "appbt") return {1.88, 0.45};
        if (n == "applu") return {1.26, 0.18};
        if (n == "spec77") return {0.50, 0.15};
        if (n == "adm") return {0.04, 0.00};
        if (n == "bdna") return {1.39, 0.42};
        if (n == "dyfesm") return {0.01, 0.00};
        if (n == "mdg") return {0.03, 0.01};
        if (n == "qcd") return {0.16, 0.06};
        return {0.05, 0.00}; // trfd
    };

    MemorySystemConfig config = paperSystemConfig();
    config.useStreams = false;

    for (const Benchmark &b : allBenchmarks()) {
        RunOutput out =
            bench::runBenchmark(b.name, ScaleLevel::DEFAULT, config);
        auto [pm, pmpi] = paper(b.name);
        table.addRow({b.name, b.suite,
                      b.inputDescription(ScaleLevel::DEFAULT),
                      fmtBytes(b.dataSetBytes(ScaleLevel::DEFAULT)),
                      fmt(out.results.l1DataMissRatePercent, 2),
                      fmt(out.results.missesPerInstructionPercent, 2),
                      fmt(pm, 2), fmt(pmpi, 2)});
    }
    table.print(std::cout);
    return 0;
}
