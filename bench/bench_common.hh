/**
 * @file
 * Shared plumbing for the paper-reproduction benchmark binaries: a
 * reference-count budget (overridable via SBSIM_BENCH_REFS), helpers
 * that run one benchmark through a configured system, and the paper's
 * published numbers for side-by-side comparison in every table.
 */

#ifndef STREAMSIM_BENCH_BENCH_COMMON_HH
#define STREAMSIM_BENCH_BENCH_COMMON_HH

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/sweep_runner.hh"
#include "workloads/benchmark.hh"

namespace sbsim {
namespace bench {

/** Per-run reference budget (default 1.5M; env SBSIM_BENCH_REFS). */
std::uint64_t refLimit();

/** Whether to time-sample the trace as the paper did (10k on / 90k
 *  off). Enabled with SBSIM_BENCH_SAMPLE=1; off by default because it
 *  multiplies generation work tenfold for the same simulated refs. */
bool useTimeSampling();

/**
 * Run @p benchmark_name at @p level through @p config, honouring the
 * reference budget and optional time sampling.
 */
RunOutput runBenchmark(const std::string &benchmark_name, ScaleLevel level,
                       const MemorySystemConfig &config);

/**
 * SweepJob for @p benchmark_name at @p level through @p config,
 * honouring the reference budget and optional time sampling — the
 * parallel-sweep counterpart of runBenchmark().
 */
SweepJob job(const std::string &benchmark_name, ScaleLevel level,
             const MemorySystemConfig &config, std::string label = "");

/**
 * Accumulates run counts and reference totals across one or more
 * sweep grids, and prints the bench-hygiene footer (total wall-clock
 * and aggregate refs/s) that BENCH_*.json trajectories track.
 */
class ThroughputLog
{
  public:
    void record(const std::vector<SweepResult> &results);

    /** Print "N runs, R refs in W s (T refs/s aggregate, J workers)". */
    void print(std::ostream &out, double wall_seconds,
               unsigned workers) const;

  private:
    std::uint64_t runs_ = 0;
    std::uint64_t refs_ = 0;
};

/** Paper reference values (approximate where read from a figure). */
struct PaperReference
{
    /** Fig. 3 stream hit rate at 10 streams, %, approx. */
    double fig3HitRate;
    /** Table 2 extra bandwidth of ordinary streams, %. */
    double table2EB;
    /** Table 3 share of hits from streams of length 1-5, %. */
    double table3Short;
    /** Table 3 share of hits from streams longer than 20, %. */
    double table3Long;
};

/** Reference numbers for @p benchmark_name; nullopt if not tabulated. */
std::optional<PaperReference> paperReference(
    const std::string &benchmark_name);

} // namespace bench
} // namespace sbsim

#endif // STREAMSIM_BENCH_BENCH_COMMON_HH
