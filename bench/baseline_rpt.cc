/**
 * @file
 * Stream buffers versus the Baer-Chen reference prediction table (the
 * paper's Section 2 contrast). Both prefetchers are measured in the
 * same metric on the same traces: the fraction of primary-cache misses
 * their buffers cover, plus wasted prefetches per miss.
 *
 * The point the paper makes is architectural, not raw performance:
 * the RPT needs the load/store PC, which "requires that commodity
 * processors be modified", while stream buffers (with the czone
 * detector for strides) work entirely off-chip. This benchmark shows
 * what each scheme gets from the same reference stream.
 */

#include <iostream>

#include "baseline/rpt_system.hh"
#include "bench_common.hh"
#include "trace/time_sampler.hh"
#include "util/table.hh"

using namespace sbsim;

namespace {

struct RptResult
{
    double coverage;
    double eb;
};

RptResult
runRpt(const std::string &name)
{
    const Benchmark &b = findBenchmark(name);
    auto workload = b.makeWorkload(ScaleLevel::DEFAULT);
    TruncatingSource limited(*workload, bench::refLimit());
    RptSystem sys(SplitCacheConfig::paperDefault(), RptConfig{});
    sys.run(limited);
    return {sys.rpt().coveragePercent(),
            sys.rpt().extraBandwidthPercent()};
}

} // namespace

int
main()
{
    std::cout
        << "Baseline: Baer-Chen RPT (on-chip, PC-indexed, 64 entries, "
           "16-block buffer)\nvs stream buffers (off-chip, 10 streams "
           "+ 16/16 filters, czone 18)\n\n";

    TablePrinter table({"name", "rpt_cover_%", "rpt_EB_%",
                        "stream_hit_%", "stream_EB_%"});

    MemorySystemConfig streams = paperSystemConfig(
        10, AllocationPolicy::UNIT_FILTER, StrideDetection::CZONE, 18);

    for (const Benchmark &b : allBenchmarks()) {
        RptResult rpt = runRpt(b.name);
        RunOutput s =
            bench::runBenchmark(b.name, ScaleLevel::DEFAULT, streams);
        table.addRow({b.name, fmt(rpt.coverage, 1), fmt(rpt.eb, 1),
                      fmt(s.engineStats.hitRatePercent(), 1),
                      fmt(s.engineStats.extraBandwidthPercent(), 1)});
    }
    table.print(std::cout);

    std::cout
        << "\nBoth cover unit-stride and constant-stride misses; "
           "neither covers indirection.\nThe difference is where they "
           "live: the RPT needs the PC (on-chip, modified\nprocessor), "
           "streams need only miss addresses (off-chip, commodity "
           "processor).\n";
    return 0;
}
