/**
 * @file
 * Bandwidth sensitivity study. The paper's Section 5/6 argument in
 * timing form: stream buffers waste memory bandwidth (EB, Table 2),
 * which is harmless when bandwidth is plentiful (the Cray T3D example
 * of Section 4.2) but queues demand fetches when it is not. The
 * unit-stride filter exists exactly for the constrained case.
 *
 * Sweeps the bus occupancy per block and reports average access time
 * for: no streams, unfiltered streams, filtered streams. Expected
 * crossover: unfiltered streams win with a fast bus; as the bus
 * narrows, their wasted prefetches crowd out demand fetches and the
 * filtered configuration takes over — for low-hit-rate benchmarks the
 * unfiltered streams can end up *slower than no streams at all*.
 */

#include <iostream>

#include "bench_common.hh"
#include "util/table.hh"

using namespace sbsim;

namespace {

double
avgCycles(const std::string &name, bool streams, bool filtered,
          unsigned bus_cycles)
{
    MemorySystemConfig config = paperSystemConfig(
        10, filtered ? AllocationPolicy::UNIT_FILTER
                     : AllocationPolicy::ALWAYS);
    config.useStreams = streams;
    config.busCyclesPerBlock = bus_cycles;
    return bench::runBenchmark(name, ScaleLevel::DEFAULT, config)
        .results.avgAccessCycles;
}

} // namespace

int
main()
{
    std::cout << "Bandwidth study: average access cycles vs bus "
                 "occupancy per block\n(10 streams, depth 2; memory "
                 "latency 50 cycles)\n\n";

    const std::vector<unsigned> buses = {0, 2, 4, 8, 16};
    for (const char *name : {"mgrid", "appbt", "adm", "trfd"}) {
        std::cout << "Workload: " << name << "\n";
        std::vector<std::string> headers = {"config"};
        for (unsigned b : buses)
            headers.push_back("bus" + std::to_string(b));
        TablePrinter table(headers);

        struct Style
        {
            const char *label;
            bool streams;
            bool filtered;
        };
        for (Style style : {Style{"no streams", false, false},
                            Style{"raw streams", true, false},
                            Style{"filtered", true, true}}) {
            std::vector<std::string> row = {style.label};
            for (unsigned b : buses)
                row.push_back(fmt(avgCycles(name, style.streams,
                                            style.filtered, b),
                                  2));
            table.addRow(row);
        }
        table.print(std::cout);
        std::cout << '\n';
    }

    std::cout << "Paper check: streams need 'systems with sufficient "
                 "main memory bandwidth';\nthe filter keeps them "
                 "effective when bandwidth is scarce (Section 6).\n";
    return 0;
}
