/**
 * @file
 * Reproduces Figure 3: stream hit rate versus the number of stream
 * buffers (1-10) for all fifteen benchmarks, with unified streams of
 * depth 2 and Jouppi's allocate-on-every-miss policy. The paper's
 * observations to check: most benchmarks land in the 50-80% band, hit
 * rate saturates around 7-8 streams, fftpde/appsp stay low (non-unit
 * strides) and adm/dyfesm stay low (array indirection).
 *
 * The 15 x 10 grid runs through the parallel SweepRunner; results are
 * returned in submission order, so rows read exactly as the old
 * serial loop produced them.
 */

#include <iostream>

#include "bench_common.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace sbsim;

int
main()
{
    std::cout << "Figure 3: stream hit rate (%) vs number of streams\n"
              << "(unified streams, depth 2, allocate on every miss)\n\n";

    const std::vector<std::uint32_t> stream_counts = {1, 2, 3, 4, 5,
                                                      6, 7, 8, 9, 10};
    std::vector<std::string> headers = {"name"};
    for (auto n : stream_counts)
        headers.push_back("s" + std::to_string(n));
    headers.push_back("paper_s10");

    const std::vector<Benchmark> &benchmarks = allBenchmarks();
    std::vector<SweepJob> jobs;
    jobs.reserve(benchmarks.size() * stream_counts.size());
    for (const Benchmark &b : benchmarks) {
        for (auto n : stream_counts) {
            jobs.push_back(bench::job(b.name, ScaleLevel::DEFAULT,
                                      paperSystemConfig(n),
                                      b.name + ":s" + std::to_string(n)));
        }
    }

    SweepRunner runner;
    double wall = 0;
    std::vector<SweepResult> results;
    {
        ScopedTimer timer(wall);
        results = runner.run(jobs);
    }

    TablePrinter table(headers);
    for (std::size_t bi = 0; bi < benchmarks.size(); ++bi) {
        const Benchmark &b = benchmarks[bi];
        std::vector<std::string> row = {b.name};
        for (std::size_t si = 0; si < stream_counts.size(); ++si) {
            const RunOutput &out =
                results[bi * stream_counts.size() + si].output;
            row.push_back(fmt(out.engineStats.hitRatePercent(), 1));
        }
        auto ref = bench::paperReference(b.name);
        row.push_back(ref ? fmt(ref->fig3HitRate, 0) : "-");
        table.addRow(row);
    }
    table.print(std::cout);

    bench::ThroughputLog log;
    log.record(results);
    log.print(std::cout, wall, runner.jobs());
    return 0;
}
