/**
 * @file
 * Reproduces Figure 3: stream hit rate versus the number of stream
 * buffers (1-10) for all fifteen benchmarks, with unified streams of
 * depth 2 and Jouppi's allocate-on-every-miss policy. The paper's
 * observations to check: most benchmarks land in the 50-80% band, hit
 * rate saturates around 7-8 streams, fftpde/appsp stay low (non-unit
 * strides) and adm/dyfesm stay low (array indirection).
 */

#include <iostream>

#include "bench_common.hh"
#include "util/table.hh"

using namespace sbsim;

int
main()
{
    std::cout << "Figure 3: stream hit rate (%) vs number of streams\n"
              << "(unified streams, depth 2, allocate on every miss)\n\n";

    const std::vector<std::uint32_t> stream_counts = {1, 2, 3, 4, 5,
                                                      6, 7, 8, 9, 10};
    std::vector<std::string> headers = {"name"};
    for (auto n : stream_counts)
        headers.push_back("s" + std::to_string(n));
    headers.push_back("paper_s10");

    TablePrinter table(headers);
    for (const Benchmark &b : allBenchmarks()) {
        std::vector<std::string> row = {b.name};
        for (auto n : stream_counts) {
            MemorySystemConfig config = paperSystemConfig(n);
            RunOutput out =
                bench::runBenchmark(b.name, ScaleLevel::DEFAULT, config);
            row.push_back(fmt(out.engineStats.hitRatePercent(), 1));
        }
        auto ref = bench::paperReference(b.name);
        row.push_back(ref ? fmt(ref->fig3HitRate, 0) : "-");
        table.addRow(row);
    }
    table.print(std::cout);
    return 0;
}
