/**
 * @file
 * Google-benchmark microbenchmarks of the simulator components
 * themselves: raw cache access rate, stream-engine lookup rate, full
 * memory-system reference rate, and workload generation rate. These
 * gate how large the reproduced experiments can be.
 */

#include <benchmark/benchmark.h>

#include "cache/cache.hh"
#include "sim/memory_system.hh"
#include "stream/prefetch_engine.hh"
#include "workloads/benchmark.hh"

using namespace sbsim;

namespace {

void
BM_CacheAccess(benchmark::State &state)
{
    CacheConfig config;
    config.sizeBytes = 64 * 1024;
    config.assoc = static_cast<std::uint32_t>(state.range(0));
    config.replacement = ReplacementKind::RANDOM;
    Cache cache(config);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(makeLoad(a)));
        a += 32;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheAccess)->Arg(1)->Arg(4)->Arg(8);

void
BM_StreamEngineMiss(benchmark::State &state)
{
    StreamEngineConfig config;
    config.numStreams = static_cast<std::uint32_t>(state.range(0));
    PrefetchEngine engine(config);
    Addr a = 0;
    std::uint64_t now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.onPrimaryMiss(makeLoad(a), ++now));
        a += 32;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StreamEngineMiss)->Arg(4)->Arg(10);

void
BM_MemorySystem(benchmark::State &state)
{
    MemorySystemConfig config;
    config.streams.numStreams = 10;
    MemorySystem system(config);
    Addr a = 0;
    for (auto _ : state) {
        system.processAccess(makeLoad(a));
        a += 8;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MemorySystem);

void
BM_WorkloadGeneration(benchmark::State &state)
{
    auto workload = findBenchmark("mgrid").makeWorkload();
    MemAccess a;
    for (auto _ : state) {
        if (!workload->next(a))
            workload->reset();
        benchmark::DoNotOptimize(a);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WorkloadGeneration);

} // namespace

BENCHMARK_MAIN();
