/**
 * @file
 * Google-benchmark microbenchmarks of the simulator components
 * themselves: raw cache access rate, stream-engine lookup rate, full
 * memory-system reference rate, and workload generation rate. These
 * gate how large the reproduced experiments can be.
 */

#include <benchmark/benchmark.h>

#include "cache/cache.hh"
#include "sim/experiment.hh"
#include "sim/l2_study.hh"
#include "sim/memory_system.hh"
#include "sim/sampled_run.hh"
#include "sim/sweep_runner.hh"
#include "trace/materialized_trace.hh"
#include "trace/phase_profile.hh"
#include "stream/prefetch_engine.hh"
#include "trace/time_sampler.hh"
#include "trace/trace_cache.hh"
#include "workloads/benchmark.hh"

using namespace sbsim;

namespace {

void
BM_CacheAccess(benchmark::State &state)
{
    CacheConfig config;
    config.sizeBytes = 64 * 1024;
    config.assoc = static_cast<std::uint32_t>(state.range(0));
    config.replacement = ReplacementKind::RANDOM;
    Cache cache(config);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(makeLoad(a)));
        a += 32;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheAccess)->Arg(1)->Arg(4)->Arg(8);

void
BM_StreamEngineMiss(benchmark::State &state)
{
    StreamEngineConfig config;
    config.numStreams = static_cast<std::uint32_t>(state.range(0));
    PrefetchEngine engine(config);
    Addr a = 0;
    std::uint64_t now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.onPrimaryMiss(makeLoad(a), ++now));
        a += 32;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StreamEngineMiss)->Arg(4)->Arg(10);

void
BM_MemorySystem(benchmark::State &state)
{
    MemorySystemConfig config;
    config.streams.numStreams = 10;
    MemorySystem system(config);
    Addr a = 0;
    for (auto _ : state) {
        system.processAccess(makeLoad(a));
        a += 8;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MemorySystem);

/**
 * The end-to-end number every reproduced figure is bounded by: a full
 * synthetic workload generated and retired through the paper's system
 * configuration (10 streams, unit filter, czone detector), measured in
 * references per second. tools/bench_throughput.sh records this into
 * BENCH_throughput.json to track the perf trajectory across PRs.
 */
void
BM_RunBenchmark(benchmark::State &state)
{
    constexpr std::uint64_t kRefs = 200000;
    const Benchmark &bench = findBenchmark("mgrid");
    for (auto _ : state) {
        auto workload = bench.makeWorkload();
        TruncatingSource limited(*workload, kRefs);
        MemorySystem system(paperSystemConfig(
            10, AllocationPolicy::UNIT_FILTER, StrideDetection::CZONE, 18));
        std::uint64_t n = system.run(limited);
        benchmark::DoNotOptimize(n);
        SystemResults results = system.finish();
        benchmark::DoNotOptimize(results);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kRefs));
}
BENCHMARK(BM_RunBenchmark)->Unit(benchmark::kMillisecond);

/**
 * The sampled-fidelity pipeline end to end: materialise the trace,
 * profile its phases, and simulate only the plan's representative
 * intervals — against BM_RunBenchmark's exact full-trace run of the
 * same workload. Items are the references the run *represents* (the
 * full trace), so items/s ratios read directly as effective speedup.
 */
void
BM_RunBenchmarkSampled(benchmark::State &state)
{
    constexpr std::uint64_t kRefs = 200000;
    const Benchmark &bench = findBenchmark("mgrid");
    for (auto _ : state) {
        auto workload = bench.makeWorkload();
        TruncatingSource limited(*workload, kRefs);
        auto trace = MaterializedTrace::fromSource(limited);
        SamplingPlan plan = buildSamplingPlan(*trace);
        RunOutput out = runSampled(
            trace, plan,
            paperSystemConfig(10, AllocationPolicy::UNIT_FILTER,
                              StrideDetection::CZONE, 18));
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kRefs));
}
BENCHMARK(BM_RunBenchmarkSampled)->Unit(benchmark::kMillisecond);

/**
 * The workload the trace-reuse layer targets: a sweep family — one
 * benchmark swept across stream counts behind a shared L1 front end.
 * Naive regenerates the workload and re-simulates the L1 per point;
 * Cached materialises the reference trace and records the post-L1
 * miss stream once, then replays it per point. Single worker, so the
 * ratio isolates the algorithmic saving from thread-pool scaling;
 * tools/bench_throughput.sh tracks the end-to-end counterpart under
 * the "sweeps" key of BENCH_throughput.json.
 */
constexpr std::uint64_t kFamilyRefs = 200000;
const std::uint32_t kFamilyStreams[] = {1, 2, 4, 6, 8, 10};

std::vector<SweepJob>
sweepFamilyJobs()
{
    std::vector<SweepJob> jobs;
    for (std::uint32_t s : kFamilyStreams) {
        jobs.push_back(benchmarkJob("mgrid", ScaleLevel::DEFAULT,
                                    paperSystemConfig(s),
                                    std::to_string(s), kFamilyRefs));
    }
    return jobs;
}

void
BM_SweepFamilyNaive(benchmark::State &state)
{
    for (auto _ : state) {
        std::vector<SweepJob> jobs = sweepFamilyJobs();
        SweepRunner runner(1);
        runner.setTraceCacheEnabled(false);
        std::vector<SweepResult> results = runner.run(jobs);
        benchmark::DoNotOptimize(results);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * kFamilyRefs * std::size(kFamilyStreams)));
}
BENCHMARK(BM_SweepFamilyNaive)->Unit(benchmark::kMillisecond);

void
BM_SweepFamilyCached(benchmark::State &state)
{
    for (auto _ : state) {
        // Start cold each iteration so the measurement amortises one
        // materialise + record over the family, exactly as a fresh
        // sweep process would.
        TraceCache::instance().clear();
        std::vector<SweepJob> jobs = sweepFamilyJobs();
        SweepRunner runner(1);
        runner.setTraceCacheEnabled(true);
        std::vector<SweepResult> results = runner.run(jobs);
        benchmark::DoNotOptimize(results);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * kFamilyRefs * std::size(kFamilyStreams)));
}
BENCHMARK(BM_SweepFamilyCached)->Unit(benchmark::kMillisecond);

/**
 * The --fidelity gate pair: the paper's Figure 3 stream-count sweep
 * (six points over one benchmark) exact versus sampled. Exact runs
 * every point through the full front end (cache off, single worker);
 * sampled profiles the trace once and simulates only each point's
 * representative intervals. tools/bench_throughput.sh derives
 * fidelity_sampled_speedup from the pair and CHECK-gates it at >= 5x.
 * Items are the references the sweep represents.
 */
constexpr std::uint64_t kFidelityRefs = 1000000;

std::vector<SweepJob>
fidelitySweepJobs(Fidelity fidelity)
{
    std::vector<SweepJob> jobs;
    for (std::uint32_t s : kFamilyStreams) {
        SweepJob job = benchmarkJob("mgrid", ScaleLevel::DEFAULT,
                                    paperSystemConfig(s),
                                    std::to_string(s), kFidelityRefs);
        job.fidelity = fidelity;
        jobs.push_back(std::move(job));
    }
    return jobs;
}

void
BM_SweepFidelityExact(benchmark::State &state)
{
    for (auto _ : state) {
        std::vector<SweepJob> jobs =
            fidelitySweepJobs(Fidelity::EXACT);
        SweepRunner runner(1);
        runner.setTraceCacheEnabled(false);
        std::vector<SweepResult> results = runner.run(jobs);
        benchmark::DoNotOptimize(results);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * kFidelityRefs *
        std::size(kFamilyStreams)));
}
BENCHMARK(BM_SweepFidelityExact)->Unit(benchmark::kMillisecond);

void
BM_SweepFidelitySampled(benchmark::State &state)
{
    for (auto _ : state) {
        // Cold cache each iteration: the measurement pays for one
        // materialise + phase profile and six interval replays,
        // exactly as a fresh sampled sweep process would.
        TraceCache::instance().clear();
        std::vector<SweepJob> jobs =
            fidelitySweepJobs(Fidelity::SAMPLED);
        SweepRunner runner(1);
        runner.setTraceCacheEnabled(false);
        std::vector<SweepResult> results = runner.run(jobs);
        benchmark::DoNotOptimize(results);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * kFidelityRefs *
        std::size(kFamilyStreams)));
}
BENCHMARK(BM_SweepFidelitySampled)->Unit(benchmark::kMillisecond);

/**
 * The analytic L2 engine against the simulated battery it replaces:
 * one recorded miss stream priced over the whole Table 4 candidate
 * grid. Arg(0) is the set-sampling log2 of the simulated baseline
 * (0 = exact — the accuracy-equivalent comparison; 3 = the production
 * 1/8 sampling). Items are demand misses consumed.
 */
MissTrace &
analyticBenchTrace()
{
    static MissTrace trace = [] {
        const Benchmark &bench = findBenchmark("mgrid");
        auto workload = bench.makeWorkload(ScaleLevel::DEFAULT);
        TruncatingSource limited(*workload, 400000);
        MemorySystemConfig front;
        front.l1 = SplitCacheConfig::paperDefault();
        return recordMissTrace(limited, front);
    }();
    return trace;
}

void
BM_AnalyticVsSimulatedL2(benchmark::State &state)
{
    const MissTrace &trace = analyticBenchTrace();
    const bool analytic = state.range(0) < 0;
    std::uint64_t fed = 0;
    for (auto _ : state) {
        if (analytic) {
            AnalyticCacheStudy study(table4CandidateConfigs());
            fed = profileMissesInto(study, trace);
            benchmark::DoNotOptimize(study.results());
        } else {
            SecondaryCacheStudy study(
                table4CandidateConfigs(),
                static_cast<unsigned>(state.range(0)));
            fed = replayMissesInto(study, trace);
            benchmark::DoNotOptimize(study.results());
        }
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * fed));
}
BENCHMARK(BM_AnalyticVsSimulatedL2)
    ->Arg(-1) // analytic engine
    ->Arg(0)  // exact simulated battery
    ->Arg(3)  // 1/8 set-sampled battery
    ->Unit(benchmark::kMillisecond);

void
BM_WorkloadGeneration(benchmark::State &state)
{
    auto workload = findBenchmark("mgrid").makeWorkload();
    MemAccess a;
    for (auto _ : state) {
        if (!workload->next(a))
            workload->reset();
        benchmark::DoNotOptimize(a);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WorkloadGeneration);

} // namespace

BENCHMARK_MAIN();
