/**
 * @file
 * Reproduces Figure 5: stream hit rate and extra bandwidth with and
 * without the unit-stride allocation filter (10 streams, 16-entry
 * filter). The paper's observations to check: EB falls by half or
 * more for most benchmarks at little hit-rate cost (trfd 96->11,
 * is 48->7, appsp 134->45, cgm 30->13); fftpde's hit rate *rises*
 * because the filter protects active streams; appbt's hit rate falls
 * hard (65->45) because most of its hits come from short streams.
 */

#include <iostream>

#include "bench_common.hh"
#include "util/table.hh"

using namespace sbsim;

int
main()
{
    std::cout << "Figure 5: effect of the unit-stride filter\n"
              << "(10 streams, depth 2, 16-entry filter)\n\n";

    TablePrinter table({"name", "hit_nofilt", "hit_filt", "EB_nofilt",
                        "EB_filt", "paper_EB_nofilt"});

    MemorySystemConfig no_filter = paperSystemConfig(10);
    MemorySystemConfig with_filter =
        paperSystemConfig(10, AllocationPolicy::UNIT_FILTER);

    for (const Benchmark &b : allBenchmarks()) {
        RunOutput base =
            bench::runBenchmark(b.name, ScaleLevel::DEFAULT, no_filter);
        RunOutput filt =
            bench::runBenchmark(b.name, ScaleLevel::DEFAULT, with_filter);
        auto ref = bench::paperReference(b.name);
        table.addRow({b.name,
                      fmt(base.engineStats.hitRatePercent(), 1),
                      fmt(filt.engineStats.hitRatePercent(), 1),
                      fmt(base.engineStats.extraBandwidthPercent(), 1),
                      fmt(filt.engineStats.extraBandwidthPercent(), 1),
                      ref ? fmt(ref->table2EB, 0) : "-"});
    }
    table.print(std::cout);

    std::cout << "\nPaper spot checks: trfd EB 96->11, is 48->7, "
                 "appsp 134->45, cgm 30->13, fftpde 158->37 (hit rises), "
                 "appbt hit 65->45.\n";
    return 0;
}
