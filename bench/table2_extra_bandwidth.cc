/**
 * @file
 * Reproduces Table 2: extra memory bandwidth (EB) consumed by ordinary
 * (unfiltered) stream buffers, as a percentage of the bandwidth the
 * program itself needs — i.e. useless prefetched blocks per demand
 * miss. Ten streams, depth 2, allocate on every miss.
 */

#include <iostream>

#include "bench_common.hh"
#include "util/table.hh"

using namespace sbsim;

int
main()
{
    std::cout << "Table 2: extra bandwidth of ordinary streams (%)\n"
              << "(10 streams, depth 2, no filter)\n\n";

    TablePrinter table({"name", "hit_rate_%", "EB_%", "paper_EB_%"});
    MemorySystemConfig config = paperSystemConfig(10);

    for (const Benchmark &b : allBenchmarks()) {
        RunOutput out =
            bench::runBenchmark(b.name, ScaleLevel::DEFAULT, config);
        auto ref = bench::paperReference(b.name);
        table.addRow({b.name, fmt(out.engineStats.hitRatePercent(), 1),
                      fmt(out.engineStats.extraBandwidthPercent(), 1),
                      ref ? fmt(ref->table2EB, 0) : "-"});
    }
    table.print(std::cout);
    return 0;
}
