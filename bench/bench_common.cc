#include "bench_common.hh"

#include <cstdlib>
#include <map>

#include "trace/time_sampler.hh"
#include "util/table.hh"

namespace sbsim {
namespace bench {

std::uint64_t
refLimit()
{
    if (const char *env = std::getenv("SBSIM_BENCH_REFS")) {
        std::uint64_t v = std::strtoull(env, nullptr, 10);
        if (v > 0)
            return v;
    }
    return 1500000;
}

bool
useTimeSampling()
{
    const char *env = std::getenv("SBSIM_BENCH_SAMPLE");
    return env && env[0] == '1';
}

RunOutput
runBenchmark(const std::string &benchmark_name, ScaleLevel level,
             const MemorySystemConfig &config)
{
    const Benchmark &bench = findBenchmark(benchmark_name);
    auto workload = bench.makeWorkload(level);
    if (useTimeSampling()) {
        TimeSampler sampler(*workload, 10000, 90000);
        TruncatingSource limited(sampler, refLimit());
        return runOnce(limited, config);
    }
    TruncatingSource limited(*workload, refLimit());
    return runOnce(limited, config);
}

SweepJob
job(const std::string &benchmark_name, ScaleLevel level,
    const MemorySystemConfig &config, std::string label)
{
    return benchmarkJob(benchmark_name, level, config, std::move(label),
                        refLimit(), useTimeSampling());
}

void
ThroughputLog::record(const std::vector<SweepResult> &results)
{
    runs_ += results.size();
    for (const SweepResult &r : results)
        refs_ += r.references;
}

void
ThroughputLog::print(std::ostream &out, double wall_seconds,
                     unsigned workers) const
{
    double aggregate =
        wall_seconds > 0 ? static_cast<double>(refs_) / wall_seconds : 0;
    out << "\nbench: " << runs_ << " runs, " << refs_ << " refs in "
        << fmt(wall_seconds, 2) << " s (" << fmt(aggregate, 0)
        << " refs/s aggregate, " << workers << " workers)\n";
}

std::optional<PaperReference>
paperReference(const std::string &benchmark_name)
{
    // Fig. 3 hit rates are read off the figure (+-3%); Table 2 and
    // Table 3 values are printed in the paper.
    static const std::map<std::string, PaperReference> refs = {
        {"embar", {99, 8, 1, 99}},    {"mgrid", {78, 36, 13, 86}},
        {"cgm", {85, 30, 3, 97}},     {"fftpde", {26, 158, 41, 59}},
        {"is", {76, 48, 4, 93}},      {"appsp", {33, 134, 5, 84}},
        {"appbt", {65, 62, 63, 37}},  {"applu", {62, 38, 22, 64}},
        {"spec77", {73, 44, 14, 84}}, {"adm", {27, 150, 73, 9}},
        {"bdna", {66, 68, 36, 33}},   {"dyfesm", {46, 108, 50, 25}},
        {"mdg", {56, 76, 32, 46}},    {"qcd", {57, 74, 50, 43}},
        {"trfd", {52, 96, 7, 90}},
    };
    auto it = refs.find(benchmark_name);
    if (it == refs.end())
        return std::nullopt;
    return it->second;
}

} // namespace bench
} // namespace sbsim
