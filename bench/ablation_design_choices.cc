/**
 * @file
 * Ablations for the design choices DESIGN.md calls out, beyond what
 * the paper tabulates:
 *
 *  1. stream depth (paper fixes 2): coverage vs wasted bandwidth;
 *  2. unit-filter size (paper: 8-10 entries suffice, 16 used);
 *  3. unified vs partitioned I/D streams (paper: partitioning was not
 *     beneficial because instruction misses are rare);
 *  4. czone vs minimum-delta non-unit-stride detection (paper: similar
 *     performance, min-delta needs more hardware);
 *  5. the Section 8 timing caveat: how many "stream hits" would stall
 *     on in-flight prefetches under a flat 50-cycle memory.
 */

#include <iostream>

#include "bench_common.hh"
#include "trace/time_sampler.hh"
#include "util/table.hh"

using namespace sbsim;

namespace {

const std::vector<std::string> kSubjects = {"mgrid", "fftpde", "appbt",
                                            "trfd"};

void
depthSweep()
{
    std::cout << "Ablation 1: stream depth (10 streams, no filter)\n\n";
    TablePrinter table(
        {"name", "d1_hit", "d1_EB", "d2_hit", "d2_EB", "d4_hit",
         "d4_EB", "d8_hit", "d8_EB"});
    for (const auto &name : kSubjects) {
        std::vector<std::string> row = {name};
        for (std::uint32_t depth : {1u, 2u, 4u, 8u}) {
            MemorySystemConfig config = paperSystemConfig(10);
            config.streams.depth = depth;
            RunOutput out =
                bench::runBenchmark(name, ScaleLevel::DEFAULT, config);
            row.push_back(fmt(out.engineStats.hitRatePercent(), 1));
            row.push_back(
                fmt(out.engineStats.extraBandwidthPercent(), 1));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << '\n';
}

void
filterSizeSweep()
{
    std::cout << "Ablation 2: unit-stride filter size (10 streams)\n\n";
    std::vector<std::string> headers = {"name"};
    for (std::uint32_t entries : {2u, 4u, 8u, 16u, 32u})
        headers.push_back("f" + std::to_string(entries));
    TablePrinter table(headers);
    for (const auto &name : kSubjects) {
        std::vector<std::string> row = {name};
        for (std::uint32_t entries : {2u, 4u, 8u, 16u, 32u}) {
            MemorySystemConfig config =
                paperSystemConfig(10, AllocationPolicy::UNIT_FILTER);
            config.streams.unitFilterEntries = entries;
            RunOutput out =
                bench::runBenchmark(name, ScaleLevel::DEFAULT, config);
            row.push_back(fmt(out.engineStats.hitRatePercent(), 1));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\n(Paper: 8-10 entries suffice.)\n\n";
}

void
partitionedStreams()
{
    std::cout << "Ablation 3: unified vs partitioned I/D streams "
                 "(10 streams)\n\n";
    TablePrinter table({"name", "unified_hit", "partitioned_hit"});
    for (const auto &name : kSubjects) {
        MemorySystemConfig unified = paperSystemConfig(10);
        MemorySystemConfig split = paperSystemConfig(10);
        split.streams.partitioned = true;
        RunOutput u =
            bench::runBenchmark(name, ScaleLevel::DEFAULT, unified);
        RunOutput p = bench::runBenchmark(name, ScaleLevel::DEFAULT, split);
        table.addRow({name, fmt(u.engineStats.hitRatePercent(), 1),
                      fmt(p.engineStats.hitRatePercent(), 1)});
    }
    table.print(std::cout);
    std::cout << "\n(Paper: partitioning was not beneficial — few "
                 "instruction misses.)\n\n";
}

void
czoneVsMinDelta()
{
    std::cout << "Ablation 4: czone vs minimum-delta stride detection\n\n";
    TablePrinter table({"name", "unit_only", "czone", "min_delta"});
    for (const char *name : {"appsp", "fftpde", "trfd"}) {
        MemorySystemConfig unit =
            paperSystemConfig(10, AllocationPolicy::UNIT_FILTER);
        MemorySystemConfig czone = paperSystemConfig(
            10, AllocationPolicy::UNIT_FILTER, StrideDetection::CZONE, 18);
        MemorySystemConfig delta =
            paperSystemConfig(10, AllocationPolicy::UNIT_FILTER,
                              StrideDetection::MIN_DELTA);
        table.addRow(
            {name,
             fmt(bench::runBenchmark(name, ScaleLevel::DEFAULT, unit)
                     .engineStats.hitRatePercent(), 1),
             fmt(bench::runBenchmark(name, ScaleLevel::DEFAULT, czone)
                     .engineStats.hitRatePercent(), 1),
             fmt(bench::runBenchmark(name, ScaleLevel::DEFAULT, delta)
                     .engineStats.hitRatePercent(), 1)});
    }
    table.print(std::cout);
    std::cout << "\n(Paper: the two schemes performed similarly.)\n\n";
}

void
streamReplacementPolicy()
{
    std::cout << "Ablation 6: stream reallocation policy "
                 "(10 streams, no filter)\n\n";
    TablePrinter table({"name", "lru_hit", "fifo_hit", "random_hit"});
    for (const auto &name : kSubjects) {
        std::vector<std::string> row = {name};
        for (StreamReplacement repl :
             {StreamReplacement::LRU, StreamReplacement::FIFO,
              StreamReplacement::RANDOM}) {
            MemorySystemConfig config = paperSystemConfig(10);
            config.streams.replacement = repl;
            RunOutput out =
                bench::runBenchmark(name, ScaleLevel::DEFAULT, config);
            row.push_back(fmt(out.engineStats.hitRatePercent(), 1));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\n(The paper assumes LRU; FIFO/random mostly match "
                 "because allocation churn dominates.)\n\n";
}

void
victimBufferWithDirectMappedL1()
{
    std::cout << "Ablation 7: direct-mapped L1 with and without a "
                 "victim buffer (Section 4.1)\n\n";
    TablePrinter table({"name", "4way_hit", "dm_hit", "dm+vb_hit",
                        "vb_local_hit_%"});
    for (const auto &name : kSubjects) {
        MemorySystemConfig four_way = paperSystemConfig(10);
        MemorySystemConfig dm = four_way;
        dm.l1.icache.assoc = 1;
        dm.l1.dcache.assoc = 1;
        MemorySystemConfig dm_vb = dm;
        dm_vb.victimBufferEntries = 8;

        RunOutput a = bench::runBenchmark(name, ScaleLevel::DEFAULT,
                                          four_way);
        RunOutput b = bench::runBenchmark(name, ScaleLevel::DEFAULT, dm);
        // The victim-buffer run needs the system object for VB stats.
        const Benchmark &bm = findBenchmark(name);
        auto workload = bm.makeWorkload(ScaleLevel::DEFAULT);
        TruncatingSource limited(*workload, bench::refLimit());
        MemorySystem sys(dm_vb);
        sys.run(limited);
        SystemResults r = sys.finish();
        double vb_hit =
            sys.victimBuffer() ? sys.victimBuffer()->hitRatePercent()
                               : 0.0;
        double dm_vb_stream_hit =
            sys.engine()->engineStats().hitRatePercent();

        table.addRow({name, fmt(a.engineStats.hitRatePercent(), 1),
                      fmt(b.engineStats.hitRatePercent(), 1),
                      fmt(dm_vb_stream_hit, 1), fmt(vb_hit, 1)});
        (void)r;
    }
    table.print(std::cout);
    std::cout << "\n(With a direct-mapped L1, conflict misses look "
                 "like isolated references to the streams; the victim "
                 "buffer absorbs them, as Jouppi proposed.)\n\n";
}

void
depthVersusLatency()
{
    std::cout << "Ablation 8: stream depth vs memory latency "
                 "(Section 3: depth must cover the latency)\n"
              << "(mgrid, 10 streams; cells are avg access cycles / "
                 "pending-hit %)\n\n";
    std::vector<std::string> headers = {"latency"};
    for (std::uint32_t depth : {1u, 2u, 4u, 8u})
        headers.push_back("d" + std::to_string(depth));
    TablePrinter table(headers);
    for (unsigned latency : {20u, 50u, 200u}) {
        std::vector<std::string> row = {std::to_string(latency)};
        for (std::uint32_t depth : {1u, 2u, 4u, 8u}) {
            MemorySystemConfig config = paperSystemConfig(10);
            config.streams.depth = depth;
            config.memLatencyCycles = latency;
            RunOutput out = bench::runBenchmark(
                "mgrid", ScaleLevel::DEFAULT, config);
            double pending = percent(
                out.results.streamHitsPending,
                out.results.streamHitsPending +
                    out.results.streamHitsReady);
            row.push_back(fmt(out.results.avgAccessCycles, 2) + "/" +
                          fmt(pending, 0));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\n(Deeper streams run further ahead, so fewer hits "
                 "stall on in-flight prefetches as latency grows — at "
                 "the cost of the bandwidth shown in Ablation 1.)\n\n";
}

void
timingCaveat()
{
    std::cout << "Ablation 5: Section 8 caveat — stream hits whose "
                 "prefetch is still in flight (50-cycle memory)\n\n";
    TablePrinter table({"name", "hits_ready", "hits_pending",
                        "pending_%", "avg_access_cycles"});
    for (const auto &name : kSubjects) {
        MemorySystemConfig config = paperSystemConfig(10);
        RunOutput out =
            bench::runBenchmark(name, ScaleLevel::DEFAULT, config);
        std::uint64_t ready = out.results.streamHitsReady;
        std::uint64_t pending = out.results.streamHitsPending;
        table.addRow({name, fmt(ready), fmt(pending),
                      fmt(percent(pending, ready + pending), 1),
                      fmt(out.results.avgAccessCycles, 2)});
    }
    table.print(std::cout);
    std::cout << '\n';
}

void
pageTranslation()
{
    std::cout << "Ablation 9: virtual-to-physical page mapping "
                 "(czone detection runs on physical addresses)\n\n";
    TablePrinter table({"name", "identity", "shuffled_4K",
                        "shuffled_64K", "shuffled_1M"});
    for (const char *name : {"appsp", "fftpde", "trfd", "mgrid"}) {
        std::vector<std::string> row = {name};
        MemorySystemConfig base = paperSystemConfig(
            10, AllocationPolicy::UNIT_FILTER, StrideDetection::CZONE,
            18);
        RunOutput ident =
            bench::runBenchmark(name, ScaleLevel::DEFAULT, base);
        row.push_back(fmt(ident.engineStats.hitRatePercent(), 1));
        for (unsigned page_bits : {12u, 16u, 20u}) {
            MemorySystemConfig config = base;
            config.translation = TranslationMode::SHUFFLED;
            config.pageBits = page_bits;
            RunOutput out =
                bench::runBenchmark(name, ScaleLevel::DEFAULT, config);
            row.push_back(fmt(out.engineStats.hitRatePercent(), 1));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\n(The paper implicitly assumes contiguous physical "
                 "pages. A scattered 4 KB page map fragments strides "
                 "larger than a page — fftpde's 16 KB stride dies — "
                 "while superpages restore the paper's behaviour. "
                 "Unit-stride benchmarks barely notice.)\n\n";
}

void
associativeLookup()
{
    std::cout << "Ablation 10: head-only vs quasi-sequential "
                 "(associative) stream lookup\n(10 streams, depth 4, "
                 "no filter; Jouppi's original design axis)\n\n";
    TablePrinter table({"name", "head_hit", "head_EB", "assoc_hit",
                        "assoc_EB"});
    for (const auto &name : kSubjects) {
        std::vector<std::string> row = {name};
        for (bool assoc : {false, true}) {
            MemorySystemConfig config = paperSystemConfig(10);
            config.streams.depth = 4;
            config.streams.associativeLookup = assoc;
            RunOutput out =
                bench::runBenchmark(name, ScaleLevel::DEFAULT, config);
            row.push_back(fmt(out.engineStats.hitRatePercent(), 1));
            row.push_back(
                fmt(out.engineStats.extraBandwidthPercent(), 1));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\n(Associative comparison needs one comparator per "
                 "entry instead of per\nstream; the paper's head-only "
                 "choice loses little on these access patterns.)\n\n";
}

} // namespace

int
main()
{
    depthSweep();
    filterSizeSweep();
    partitionedStreams();
    czoneVsMinDelta();
    timingCaveat();
    streamReplacementPolicy();
    victimBufferWithDirectMappedL1();
    depthVersusLatency();
    pageTranslation();
    associativeLookup();
    return 0;
}
