/**
 * @file
 * Ablations for the design choices DESIGN.md calls out, beyond what
 * the paper tabulates:
 *
 *  1. stream depth (paper fixes 2): coverage vs wasted bandwidth;
 *  2. unit-filter size (paper: 8-10 entries suffice, 16 used);
 *  3. unified vs partitioned I/D streams (paper: partitioning was not
 *     beneficial because instruction misses are rare);
 *  4. czone vs minimum-delta non-unit-stride detection (paper: similar
 *     performance, min-delta needs more hardware);
 *  5. the Section 8 timing caveat: how many "stream hits" would stall
 *     on in-flight prefetches under a flat 50-cycle memory.
 *
 * Every ablation builds a (benchmark x configuration) job grid and
 * fans it out through the shared SweepRunner; results come back in
 * submission order, so the tables read exactly as the old serial
 * loops produced them.
 */

#include <iostream>

#include "bench_common.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace sbsim;

namespace {

const std::vector<std::string> kSubjects = {"mgrid", "fftpde", "appbt",
                                            "trfd"};

SweepRunner &
runner()
{
    static SweepRunner r;
    return r;
}

bench::ThroughputLog &
throughput()
{
    static bench::ThroughputLog log;
    return log;
}

/** Run one ablation's grid, feeding the binary-wide footer totals. */
std::vector<SweepResult>
runGrid(const std::vector<SweepJob> &jobs)
{
    std::vector<SweepResult> results = runner().run(jobs);
    throughput().record(results);
    return results;
}

void
depthSweep()
{
    std::cout << "Ablation 1: stream depth (10 streams, no filter)\n\n";
    const std::vector<std::uint32_t> depths = {1, 2, 4, 8};
    std::vector<SweepJob> jobs;
    for (const auto &name : kSubjects) {
        for (std::uint32_t depth : depths) {
            MemorySystemConfig config = paperSystemConfig(10);
            config.streams.depth = depth;
            jobs.push_back(bench::job(name, ScaleLevel::DEFAULT, config));
        }
    }
    std::vector<SweepResult> results = runGrid(jobs);

    TablePrinter table(
        {"name", "d1_hit", "d1_EB", "d2_hit", "d2_EB", "d4_hit",
         "d4_EB", "d8_hit", "d8_EB"});
    for (std::size_t ni = 0; ni < kSubjects.size(); ++ni) {
        std::vector<std::string> row = {kSubjects[ni]};
        for (std::size_t di = 0; di < depths.size(); ++di) {
            const RunOutput &out =
                results[ni * depths.size() + di].output;
            row.push_back(fmt(out.engineStats.hitRatePercent(), 1));
            row.push_back(
                fmt(out.engineStats.extraBandwidthPercent(), 1));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << '\n';
}

void
filterSizeSweep()
{
    std::cout << "Ablation 2: unit-stride filter size (10 streams)\n\n";
    const std::vector<std::uint32_t> sizes = {2, 4, 8, 16, 32};
    std::vector<std::string> headers = {"name"};
    for (std::uint32_t entries : sizes)
        headers.push_back("f" + std::to_string(entries));

    std::vector<SweepJob> jobs;
    for (const auto &name : kSubjects) {
        for (std::uint32_t entries : sizes) {
            MemorySystemConfig config =
                paperSystemConfig(10, AllocationPolicy::UNIT_FILTER);
            config.streams.unitFilterEntries = entries;
            jobs.push_back(bench::job(name, ScaleLevel::DEFAULT, config));
        }
    }
    std::vector<SweepResult> results = runGrid(jobs);

    TablePrinter table(headers);
    for (std::size_t ni = 0; ni < kSubjects.size(); ++ni) {
        std::vector<std::string> row = {kSubjects[ni]};
        for (std::size_t si = 0; si < sizes.size(); ++si) {
            const RunOutput &out = results[ni * sizes.size() + si].output;
            row.push_back(fmt(out.engineStats.hitRatePercent(), 1));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\n(Paper: 8-10 entries suffice.)\n\n";
}

void
partitionedStreams()
{
    std::cout << "Ablation 3: unified vs partitioned I/D streams "
                 "(10 streams)\n\n";
    std::vector<SweepJob> jobs;
    for (const auto &name : kSubjects) {
        MemorySystemConfig unified = paperSystemConfig(10);
        MemorySystemConfig split = paperSystemConfig(10);
        split.streams.partitioned = true;
        jobs.push_back(bench::job(name, ScaleLevel::DEFAULT, unified));
        jobs.push_back(bench::job(name, ScaleLevel::DEFAULT, split));
    }
    std::vector<SweepResult> results = runGrid(jobs);

    TablePrinter table({"name", "unified_hit", "partitioned_hit"});
    for (std::size_t ni = 0; ni < kSubjects.size(); ++ni) {
        const RunOutput &u = results[ni * 2 + 0].output;
        const RunOutput &p = results[ni * 2 + 1].output;
        table.addRow({kSubjects[ni],
                      fmt(u.engineStats.hitRatePercent(), 1),
                      fmt(p.engineStats.hitRatePercent(), 1)});
    }
    table.print(std::cout);
    std::cout << "\n(Paper: partitioning was not beneficial — few "
                 "instruction misses.)\n\n";
}

void
czoneVsMinDelta()
{
    std::cout << "Ablation 4: czone vs minimum-delta stride detection\n\n";
    const std::vector<const char *> names = {"appsp", "fftpde", "trfd"};
    std::vector<SweepJob> jobs;
    for (const char *name : names) {
        jobs.push_back(bench::job(
            name, ScaleLevel::DEFAULT,
            paperSystemConfig(10, AllocationPolicy::UNIT_FILTER)));
        jobs.push_back(bench::job(
            name, ScaleLevel::DEFAULT,
            paperSystemConfig(10, AllocationPolicy::UNIT_FILTER,
                              StrideDetection::CZONE, 18)));
        jobs.push_back(bench::job(
            name, ScaleLevel::DEFAULT,
            paperSystemConfig(10, AllocationPolicy::UNIT_FILTER,
                              StrideDetection::MIN_DELTA)));
    }
    std::vector<SweepResult> results = runGrid(jobs);

    TablePrinter table({"name", "unit_only", "czone", "min_delta"});
    for (std::size_t ni = 0; ni < names.size(); ++ni) {
        table.addRow(
            {names[ni],
             fmt(results[ni * 3 + 0]
                     .output.engineStats.hitRatePercent(), 1),
             fmt(results[ni * 3 + 1]
                     .output.engineStats.hitRatePercent(), 1),
             fmt(results[ni * 3 + 2]
                     .output.engineStats.hitRatePercent(), 1)});
    }
    table.print(std::cout);
    std::cout << "\n(Paper: the two schemes performed similarly.)\n\n";
}

void
streamReplacementPolicy()
{
    std::cout << "Ablation 6: stream reallocation policy "
                 "(10 streams, no filter)\n\n";
    const std::vector<StreamReplacement> policies = {
        StreamReplacement::LRU, StreamReplacement::FIFO,
        StreamReplacement::RANDOM};
    std::vector<SweepJob> jobs;
    for (const auto &name : kSubjects) {
        for (StreamReplacement repl : policies) {
            MemorySystemConfig config = paperSystemConfig(10);
            config.streams.replacement = repl;
            jobs.push_back(bench::job(name, ScaleLevel::DEFAULT, config));
        }
    }
    std::vector<SweepResult> results = runGrid(jobs);

    TablePrinter table({"name", "lru_hit", "fifo_hit", "random_hit"});
    for (std::size_t ni = 0; ni < kSubjects.size(); ++ni) {
        std::vector<std::string> row = {kSubjects[ni]};
        for (std::size_t pi = 0; pi < policies.size(); ++pi) {
            const RunOutput &out =
                results[ni * policies.size() + pi].output;
            row.push_back(fmt(out.engineStats.hitRatePercent(), 1));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\n(The paper assumes LRU; FIFO/random mostly match "
                 "because allocation churn dominates.)\n\n";
}

void
victimBufferWithDirectMappedL1()
{
    std::cout << "Ablation 7: direct-mapped L1 with and without a "
                 "victim buffer (Section 4.1)\n\n";
    std::vector<SweepJob> jobs;
    for (const auto &name : kSubjects) {
        MemorySystemConfig four_way = paperSystemConfig(10);
        MemorySystemConfig dm = four_way;
        dm.l1.icache.assoc = 1;
        dm.l1.dcache.assoc = 1;
        MemorySystemConfig dm_vb = dm;
        dm_vb.victimBufferEntries = 8;
        jobs.push_back(bench::job(name, ScaleLevel::DEFAULT, four_way));
        jobs.push_back(bench::job(name, ScaleLevel::DEFAULT, dm));
        jobs.push_back(bench::job(name, ScaleLevel::DEFAULT, dm_vb));
    }
    std::vector<SweepResult> results = runGrid(jobs);

    TablePrinter table({"name", "4way_hit", "dm_hit", "dm+vb_hit",
                        "vb_local_hit_%"});
    for (std::size_t ni = 0; ni < kSubjects.size(); ++ni) {
        const RunOutput &a = results[ni * 3 + 0].output;
        const RunOutput &b = results[ni * 3 + 1].output;
        const RunOutput &c = results[ni * 3 + 2].output;
        table.addRow({kSubjects[ni],
                      fmt(a.engineStats.hitRatePercent(), 1),
                      fmt(b.engineStats.hitRatePercent(), 1),
                      fmt(c.engineStats.hitRatePercent(), 1),
                      fmt(c.victimHitRatePercent, 1)});
    }
    table.print(std::cout);
    std::cout << "\n(With a direct-mapped L1, conflict misses look "
                 "like isolated references to the streams; the victim "
                 "buffer absorbs them, as Jouppi proposed.)\n\n";
}

void
depthVersusLatency()
{
    std::cout << "Ablation 8: stream depth vs memory latency "
                 "(Section 3: depth must cover the latency)\n"
              << "(mgrid, 10 streams; cells are avg access cycles / "
                 "pending-hit %)\n\n";
    const std::vector<unsigned> latencies = {20, 50, 200};
    const std::vector<std::uint32_t> depths = {1, 2, 4, 8};
    std::vector<std::string> headers = {"latency"};
    for (std::uint32_t depth : depths)
        headers.push_back("d" + std::to_string(depth));

    std::vector<SweepJob> jobs;
    for (unsigned latency : latencies) {
        for (std::uint32_t depth : depths) {
            MemorySystemConfig config = paperSystemConfig(10);
            config.streams.depth = depth;
            config.memLatencyCycles = latency;
            jobs.push_back(
                bench::job("mgrid", ScaleLevel::DEFAULT, config));
        }
    }
    std::vector<SweepResult> results = runGrid(jobs);

    TablePrinter table(headers);
    for (std::size_t li = 0; li < latencies.size(); ++li) {
        std::vector<std::string> row = {std::to_string(latencies[li])};
        for (std::size_t di = 0; di < depths.size(); ++di) {
            const RunOutput &out =
                results[li * depths.size() + di].output;
            double pending = percent(
                out.results.streamHitsPending,
                out.results.streamHitsPending +
                    out.results.streamHitsReady);
            row.push_back(fmt(out.results.avgAccessCycles, 2) + "/" +
                          fmt(pending, 0));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\n(Deeper streams run further ahead, so fewer hits "
                 "stall on in-flight prefetches as latency grows — at "
                 "the cost of the bandwidth shown in Ablation 1.)\n\n";
}

void
timingCaveat()
{
    std::cout << "Ablation 5: Section 8 caveat — stream hits whose "
                 "prefetch is still in flight (50-cycle memory)\n\n";
    std::vector<SweepJob> jobs;
    for (const auto &name : kSubjects)
        jobs.push_back(
            bench::job(name, ScaleLevel::DEFAULT, paperSystemConfig(10)));
    std::vector<SweepResult> results = runGrid(jobs);

    TablePrinter table({"name", "hits_ready", "hits_pending",
                        "pending_%", "avg_access_cycles"});
    for (std::size_t ni = 0; ni < kSubjects.size(); ++ni) {
        const RunOutput &out = results[ni].output;
        std::uint64_t ready = out.results.streamHitsReady;
        std::uint64_t pending = out.results.streamHitsPending;
        table.addRow({kSubjects[ni], fmt(ready), fmt(pending),
                      fmt(percent(pending, ready + pending), 1),
                      fmt(out.results.avgAccessCycles, 2)});
    }
    table.print(std::cout);
    std::cout << '\n';
}

void
pageTranslation()
{
    std::cout << "Ablation 9: virtual-to-physical page mapping "
                 "(czone detection runs on physical addresses)\n\n";
    const std::vector<const char *> names = {"appsp", "fftpde", "trfd",
                                             "mgrid"};
    const std::vector<unsigned> page_bits = {12, 16, 20};
    std::vector<SweepJob> jobs;
    for (const char *name : names) {
        MemorySystemConfig base = paperSystemConfig(
            10, AllocationPolicy::UNIT_FILTER, StrideDetection::CZONE,
            18);
        jobs.push_back(bench::job(name, ScaleLevel::DEFAULT, base));
        for (unsigned bits : page_bits) {
            MemorySystemConfig config = base;
            config.translation = TranslationMode::SHUFFLED;
            config.pageBits = bits;
            jobs.push_back(bench::job(name, ScaleLevel::DEFAULT, config));
        }
    }
    std::vector<SweepResult> results = runGrid(jobs);

    TablePrinter table({"name", "identity", "shuffled_4K",
                        "shuffled_64K", "shuffled_1M"});
    std::size_t per_name = 1 + page_bits.size();
    for (std::size_t ni = 0; ni < names.size(); ++ni) {
        std::vector<std::string> row = {names[ni]};
        for (std::size_t ci = 0; ci < per_name; ++ci) {
            const RunOutput &out = results[ni * per_name + ci].output;
            row.push_back(fmt(out.engineStats.hitRatePercent(), 1));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\n(The paper implicitly assumes contiguous physical "
                 "pages. A scattered 4 KB page map fragments strides "
                 "larger than a page — fftpde's 16 KB stride dies — "
                 "while superpages restore the paper's behaviour. "
                 "Unit-stride benchmarks barely notice.)\n\n";
}

void
associativeLookup()
{
    std::cout << "Ablation 10: head-only vs quasi-sequential "
                 "(associative) stream lookup\n(10 streams, depth 4, "
                 "no filter; Jouppi's original design axis)\n\n";
    std::vector<SweepJob> jobs;
    for (const auto &name : kSubjects) {
        for (bool assoc : {false, true}) {
            MemorySystemConfig config = paperSystemConfig(10);
            config.streams.depth = 4;
            config.streams.associativeLookup = assoc;
            jobs.push_back(bench::job(name, ScaleLevel::DEFAULT, config));
        }
    }
    std::vector<SweepResult> results = runGrid(jobs);

    TablePrinter table({"name", "head_hit", "head_EB", "assoc_hit",
                        "assoc_EB"});
    for (std::size_t ni = 0; ni < kSubjects.size(); ++ni) {
        std::vector<std::string> row = {kSubjects[ni]};
        for (std::size_t ai = 0; ai < 2; ++ai) {
            const RunOutput &out = results[ni * 2 + ai].output;
            row.push_back(fmt(out.engineStats.hitRatePercent(), 1));
            row.push_back(
                fmt(out.engineStats.extraBandwidthPercent(), 1));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\n(Associative comparison needs one comparator per "
                 "entry instead of per\nstream; the paper's head-only "
                 "choice loses little on these access patterns.)\n\n";
}

} // namespace

int
main()
{
    double wall = 0;
    {
        ScopedTimer timer(wall);
        depthSweep();
        filterSizeSweep();
        partitionedStreams();
        czoneVsMinDelta();
        timingCaveat();
        streamReplacementPolicy();
        victimBufferWithDirectMappedL1();
        depthVersusLatency();
        pageTranslation();
        associativeLookup();
    }
    throughput().print(std::cout, wall, runner().jobs());
    return 0;
}
