/**
 * @file
 * The third arm of the paper's Section 2 triangle: compiler-inserted
 * software prefetching (Porterfield; Mowry, Lam & Gupta) versus
 * hardware stream buffers, on the same workloads. Software prefetch
 * distance 8, with software-pipelined indirection for the gathers.
 *
 * The trade the paper describes, to check here:
 *  - software prefetching covers regular *and* indirect accesses the
 *    off-chip streams cannot;
 *  - but every prefetch "requires extra cycles for execution" and
 *    consumes pin bandwidth (instruction overhead column);
 *  - and "software may not be able to predict conflict or capacity
 *    misses" — the burst/conflict components stay uncovered.
 */

#include <iostream>

#include "bench_common.hh"
#include "trace/time_sampler.hh"
#include "util/table.hh"

using namespace sbsim;

namespace {

struct Outcome
{
    std::uint64_t misses;
    double avgCycles;
    double overheadPercent; ///< Prefetch instructions per reference.
};

Outcome
runConfig(const std::string &name, bool streams,
          std::uint32_t sw_distance)
{
    const Benchmark &b = findBenchmark(name);
    WorkloadSpec spec = b.makeSpec(ScaleLevel::DEFAULT);
    spec.swPrefetchDistance = sw_distance;
    ComposedWorkload workload(spec);
    TruncatingSource limited(workload, bench::refLimit());

    MemorySystemConfig config = paperSystemConfig(
        10, AllocationPolicy::UNIT_FILTER, StrideDetection::CZONE, 18);
    config.useStreams = streams;
    config.busCyclesPerBlock = 4;

    MemorySystem sys(config);
    sys.run(limited);
    SystemResults r = sys.finish();
    return {r.l1DataMisses, r.avgAccessCycles,
            percent(r.swPrefetches, r.references)};
}

} // namespace

int
main()
{
    std::cout
        << "Software prefetching (distance 8, pipelined indirection) "
           "vs stream buffers\n(bus 4 cycles/block, memory 50 "
           "cycles)\n\n";

    TablePrinter table({"name", "none_cyc", "streams_cyc", "sw_cyc",
                        "sw_miss_redux_%", "sw_overhead_%"});

    for (const char *name :
         {"embar", "mgrid", "cgm", "fftpde", "appsp", "appbt", "adm",
          "bdna", "trfd"}) {
        Outcome none = runConfig(name, false, 0);
        Outcome streams = runConfig(name, true, 0);
        Outcome sw = runConfig(name, false, 8);
        double redux = percent(none.misses - std::min(sw.misses,
                                                      none.misses),
                               none.misses);
        table.addRow({name, fmt(none.avgCycles, 2),
                      fmt(streams.avgCycles, 2), fmt(sw.avgCycles, 2),
                      fmt(redux, 1), fmt(sw.overheadPercent, 1)});
    }
    table.print(std::cout);

    std::cout
        << "\nSoftware prefetching covers the regular sweeps and the "
           "pipelined a[b[i]]\ngathers, at a per-reference instruction "
           "cost (overhead column). What it\ncannot predict stays "
           "uncovered: scattered pointer chases (adm), random-\nbase "
           "bursts and conflict misses (appbt) — the paper's Section 2 "
           "criticism.\n";
    return 0;
}
