/**
 * @file
 * The paper's thesis, made executable: compare the three memory-system
 * styles of Section 1 on every benchmark —
 *
 *   conventional: 64K+64K L1 backed by a 1 MB unified L2 (the circa-
 *                 1993 workstation the paper wants to replace);
 *   streams:      L1 backed only by 10 filtered stream buffers and
 *                 main memory (Figure 1);
 *   hybrid:       both — Jouppi's original arrangement, streams
 *                 prefetching out of the L2.
 *
 * Reported per style: the local hit rate of the second level (L2 or
 * streams) and the timing model's average access time under a
 * moderately provisioned bus. The paper's claim to check: for the
 * majority of these scientific codes the streams-only system is
 * competitive with the expensive secondary cache.
 *
 * The 15 x 3 grid runs through the parallel SweepRunner.
 */

#include <iostream>

#include "bench_common.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace sbsim;

namespace {

MemorySystemConfig
styled(bool l2, bool streams)
{
    MemorySystemConfig config = paperSystemConfig(
        10, AllocationPolicy::UNIT_FILTER, StrideDetection::CZONE, 18);
    config.useStreams = streams;
    config.useL2 = l2;
    config.l2 = {1024 * 1024, 4, 64, ReplacementKind::LRU, true, true,
                 3};
    config.busCyclesPerBlock = 4;
    return config;
}

} // namespace

int
main()
{
    std::cout
        << "System comparison: conventional 1 MB L2 vs streams-only "
           "vs hybrid\n(streams: 10 + 16/16 filters, czone 18; bus: 4 "
           "cycles/block; memory: 50 cycles)\n\n";

    // Three jobs per benchmark: conventional, streams-only, hybrid.
    const std::vector<Benchmark> &benchmarks = allBenchmarks();
    std::vector<SweepJob> jobs;
    jobs.reserve(benchmarks.size() * 3);
    for (const Benchmark &b : benchmarks) {
        jobs.push_back(bench::job(b.name, ScaleLevel::DEFAULT,
                                  styled(true, false), b.name + ":l2"));
        jobs.push_back(bench::job(b.name, ScaleLevel::DEFAULT,
                                  styled(false, true),
                                  b.name + ":streams"));
        jobs.push_back(bench::job(b.name, ScaleLevel::DEFAULT,
                                  styled(true, true),
                                  b.name + ":hybrid"));
    }

    SweepRunner runner;
    double wall = 0;
    std::vector<SweepResult> results;
    {
        ScopedTimer timer(wall);
        results = runner.run(jobs);
    }

    TablePrinter table({"name", "L2_hit_%", "L2_cycles", "stream_hit_%",
                        "stream_cycles", "hybrid_cycles"});

    double streams_better_or_close = 0;
    for (std::size_t bi = 0; bi < benchmarks.size(); ++bi) {
        const RunOutput &conventional = results[bi * 3 + 0].output;
        const RunOutput &streams = results[bi * 3 + 1].output;
        const RunOutput &hybrid = results[bi * 3 + 2].output;

        double l2_cycles = conventional.results.avgAccessCycles;
        double stream_cycles = streams.results.avgAccessCycles;
        if (stream_cycles <= l2_cycles * 1.15)
            ++streams_better_or_close;

        table.addRow(
            {benchmarks[bi].name,
             fmt(conventional.results.l2LocalHitRatePercent, 1),
             fmt(l2_cycles, 2),
             fmt(streams.engineStats.hitRatePercent(), 1),
             fmt(stream_cycles, 2),
             fmt(hybrid.results.avgAccessCycles, 2)});
    }
    table.print(std::cout);

    std::cout << "\n" << fmt(streams_better_or_close, 0) << "/15 "
              << "benchmarks run within 15% of (or faster than) the "
                 "1 MB secondary cache\nusing only ~10 cache blocks of "
                 "SRAM plus comparators — the paper's\ncost-"
                 "effectiveness argument.\n";

    bench::ThroughputLog log;
    log.record(results);
    log.print(std::cout, wall, runner.jobs());
    return 0;
}
