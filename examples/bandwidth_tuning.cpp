/**
 * @file
 * Bandwidth tuning: the system-design question of Section 6. A
 * machine with limited memory bandwidth cannot afford Jouppi's
 * allocate-on-every-miss streams; the unit-stride filter trades a
 * little hit rate for a large cut in wasted prefetch bandwidth. This
 * example sweeps the filter size on two contrasting workloads — trfd
 * (isolated references, filter is nearly free) and appbt (short
 * streams, the filter costs real hits) — and prints the trade-off so
 * a designer can pick an operating point.
 */

#include <iostream>

#include "sim/experiment.hh"
#include "trace/time_sampler.hh"
#include "util/table.hh"
#include "workloads/benchmark.hh"

using namespace sbsim;

namespace {

struct Point
{
    double hit;
    double eb;
};

Point
measure(const std::string &name, bool filtered, std::uint32_t entries)
{
    const Benchmark &bench = findBenchmark(name);
    auto workload = bench.makeWorkload(ScaleLevel::DEFAULT);
    TruncatingSource trace(*workload, 800000);
    MemorySystemConfig config = paperSystemConfig(
        10, filtered ? AllocationPolicy::UNIT_FILTER
                     : AllocationPolicy::ALWAYS);
    config.streams.unitFilterEntries = entries;
    RunOutput out = runOnce(trace, config);
    return {out.engineStats.hitRatePercent(),
            out.engineStats.extraBandwidthPercent()};
}

} // namespace

int
main()
{
    for (const char *name : {"trfd", "appbt"}) {
        std::cout << "Workload: " << name << "\n";
        TablePrinter table({"config", "hit_rate_%", "extra_bw_%"});
        Point raw = measure(name, false, 16);
        table.addRow({"no filter", fmt(raw.hit, 1), fmt(raw.eb, 1)});
        for (std::uint32_t entries : {4u, 8u, 16u, 32u}) {
            Point p = measure(name, true, entries);
            table.addRow({"filter/" + std::to_string(entries),
                          fmt(p.hit, 1), fmt(p.eb, 1)});
        }
        table.print(std::cout);
        std::cout << '\n';
    }
    std::cout
        << "If the memory system can supply the extra bandwidth, run "
           "unfiltered\n(appbt keeps its short-stream hits); if not, "
           "the filter buys a ~5-10x\nbandwidth reduction (trfd) for "
           "a small hit-rate cost.\n";
    return 0;
}
