/**
 * @file
 * Quickstart: build the paper's memory system — a 64K I + 64K D
 * primary cache backed only by stream buffers and main memory — run a
 * synthetic scientific workload through it, and print the headline
 * statistics. This is the smallest end-to-end use of the library.
 */

#include <iostream>

#include "sim/experiment.hh"
#include "trace/time_sampler.hh"
#include "workloads/benchmark.hh"

int
main()
{
    using namespace sbsim;

    // 1. Pick a workload. The registry models the paper's fifteen
    //    NAS/PERFECT benchmarks; mgrid is a friendly multigrid kernel.
    const Benchmark &bench = findBenchmark("mgrid");
    auto workload = bench.makeWorkload(ScaleLevel::DEFAULT);
    TruncatingSource trace(*workload, 1000000);

    // 2. Configure the system: 10 stream buffers of depth 2 with the
    //    paper's unit-stride allocation filter.
    MemorySystemConfig config =
        paperSystemConfig(10, AllocationPolicy::UNIT_FILTER);

    // 3. Run and report.
    MemorySystem system(config);
    std::uint64_t refs = system.run(trace);
    SystemResults results = system.finish();

    std::cout << "workload:          " << bench.name << " ("
              << bench.description << ")\n"
              << "references:        " << refs << "\n"
              << "L1 miss rate:      " << results.l1MissRatePercent
              << " %\n"
              << "stream hit rate:   " << results.streamHitRatePercent
              << " %\n"
              << "extra bandwidth:   " << results.extraBandwidthPercent
              << " %\n"
              << "avg access time:   " << results.avgAccessCycles
              << " cycles\n";

    // Component statistics are available as named groups.
    system.l1().dcache().stats().print(std::cout);
    system.engine()->stats().print(std::cout);
    return 0;
}
