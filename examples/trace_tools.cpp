/**
 * @file
 * Trace tooling: the methodology substrate of Section 4. Capture a
 * workload into a binary trace file, time-sample it exactly as the
 * paper did (10,000 references on, 90,000 off = 10%), and replay both
 * the full and the sampled trace into identical systems to see how
 * well sampled hit rates track full-trace hit rates.
 */

#include <cstdio>
#include <iostream>

#include "sim/experiment.hh"
#include "trace/file_trace.hh"
#include "trace/time_sampler.hh"
#include "util/table.hh"
#include "workloads/benchmark.hh"

using namespace sbsim;

int
main()
{
    const std::string path = "/tmp/streamsim_example.trace";
    const Benchmark &bench = findBenchmark("applu");

    // 1. Capture: workload -> binary trace file.
    {
        auto workload = bench.makeWorkload(ScaleLevel::DEFAULT);
        TruncatingSource limited(*workload, 1200000);
        TraceWriter writer(path);
        std::uint64_t n = writer.appendAll(limited);
        std::cout << "captured " << n << " references to " << path
                  << "\n";
    }

    // 2. Replay the full trace.
    MemorySystemConfig config = paperSystemConfig(10);
    TraceReader full(path);
    RunOutput full_run = runOnce(full, config);

    // 3. Replay a 10% time sample of the same trace.
    TraceReader again(path);
    TimeSampler sampled(again, 10000, 90000);
    RunOutput sampled_run = runOnce(sampled, config);

    TablePrinter table({"trace", "refs", "hit_rate_%", "EB_%"});
    table.addRow({"full", fmt(full_run.results.references),
                  fmt(full_run.engineStats.hitRatePercent(), 1),
                  fmt(full_run.engineStats.extraBandwidthPercent(), 1)});
    table.addRow(
        {"10% sample", fmt(sampled_run.results.references),
         fmt(sampled_run.engineStats.hitRatePercent(), 1),
         fmt(sampled_run.engineStats.extraBandwidthPercent(), 1)});
    table.print(std::cout);

    std::remove(path.c_str());
    return 0;
}
