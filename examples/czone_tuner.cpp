/**
 * @file
 * Czone auto-tuning. Section 7 ends with: "Since the size of the
 * czone depends on the stride and the array dimensions, it is
 * possible for the programmer or the compiler to set it to a suitable
 * value." This example plays that compiler: it profiles a short
 * prefix of each strided workload across candidate czone sizes (the
 * run-time-settable mask register), picks the best, and then runs the
 * full workload with the tuned value — reporting what a fixed default
 * would have left on the table.
 */

#include <iostream>

#include "sim/experiment.hh"
#include "trace/time_sampler.hh"
#include "util/table.hh"
#include "workloads/benchmark.hh"

using namespace sbsim;

namespace {

double
hitRateAt(const Benchmark &bench, unsigned czone_bits,
          std::uint64_t budget)
{
    auto workload = bench.makeWorkload(ScaleLevel::DEFAULT);
    TruncatingSource limited(*workload, budget);
    MemorySystemConfig config = paperSystemConfig(
        10, AllocationPolicy::UNIT_FILTER, StrideDetection::CZONE,
        czone_bits);
    return runOnce(limited, config).engineStats.hitRatePercent();
}

/** Profile a short prefix and return the best czone size. */
unsigned
tuneCzone(const Benchmark &bench, std::uint64_t profile_budget)
{
    unsigned best_bits = 18;
    double best_hit = -1;
    for (unsigned bits : {12u, 14u, 16u, 18u, 20u, 22u, 24u}) {
        double hit = hitRateAt(bench, bits, profile_budget);
        if (hit > best_hit) {
            best_hit = hit;
            best_bits = bits;
        }
    }
    return best_bits;
}

} // namespace

int
main()
{
    const std::uint64_t profile_budget = 120000; // Short prefix.
    const std::uint64_t full_budget = 900000;
    const unsigned fixed_default = 14;

    std::cout << "Tuning the czone size per program (profile "
              << profile_budget << " refs, then run " << full_budget
              << ")\n\n";

    TablePrinter table({"name", "tuned_bits", "hit_tuned",
                        "hit_fixed_" + std::to_string(fixed_default),
                        "gain"});
    for (const char *name : {"appsp", "fftpde", "trfd"}) {
        const Benchmark &bench = findBenchmark(name);
        unsigned bits = tuneCzone(bench, profile_budget);
        double tuned = hitRateAt(bench, bits, full_budget);
        double fixed = hitRateAt(bench, fixed_default, full_budget);
        table.addRow({name, std::to_string(bits), fmt(tuned, 1),
                      fmt(fixed, 1), fmt(tuned - fixed, 1)});
    }
    table.print(std::cout);

    std::cout << "\nA profile-guided czone recovers the strided "
                 "passes a fixed mask can miss\n(fftpde needs 16-22 "
                 "bits; a 14-bit default loses most of its gain).\n";
    return 0;
}
