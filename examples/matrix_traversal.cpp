/**
 * @file
 * Matrix traversal: the scenario that motivates non-unit-stride
 * detection (Section 7 of the paper). A large matrix is walked
 * row-major (unit stride) and then column-major (stride = one row).
 * Ordinary streams catch only the row-major walk; adding the czone
 * filter recovers the column-major walk too — provided the czone is
 * sized right, which this example sweeps.
 */

#include <iostream>

#include "sim/experiment.hh"
#include "util/table.hh"
#include "workloads/pattern.hh"

using namespace sbsim;

namespace {

/** Build a row-major + column-major traversal of an N x N matrix. */
WorkloadSpec
matrixWorkload(std::uint64_t n)
{
    AddressArena arena;
    const std::uint64_t row_bytes = n * 8;
    Addr matrix = arena.alloc(n * row_bytes);

    WorkloadSpec spec;
    spec.name = "matrix";
    spec.timeSteps = 4;

    // Row-major: one long unit-stride stream.
    SweepOp rows;
    rows.streams = {{matrix, 32, AccessType::LOAD, 8}};
    rows.count = n * row_bytes / 32;
    spec.ops.push_back(rows);

    // Column-major: column by column, stride = one row.
    SweepOp cols;
    cols.streams = {
        {matrix, static_cast<std::int64_t>(row_bytes),
         AccessType::LOAD, 8}};
    cols.count = n;
    cols.segments = n;
    cols.segmentStride = 8;
    spec.ops.push_back(cols);
    return spec;
}

double
hitRate(std::uint64_t n, StrideDetection stride, unsigned czone_bits)
{
    ComposedWorkload workload(matrixWorkload(n));
    MemorySystemConfig config = paperSystemConfig(
        10, AllocationPolicy::UNIT_FILTER, stride, czone_bits);
    return runOnce(workload, config).engineStats.hitRatePercent();
}

} // namespace

int
main()
{
    const std::uint64_t n = 512; // 512 x 512 doubles = 2 MB.

    std::cout << "Traversing a 512x512 double matrix row-major then "
                 "column-major\n(row stride = 4 KB)\n\n";

    std::cout << "unit-stride streams only:   "
              << fmt(hitRate(n, StrideDetection::NONE, 0), 1) << " %\n\n";

    TablePrinter table({"czone_bits", "hit_rate_%"});
    for (unsigned bits : {10u, 12u, 14u, 16u, 18u, 20u, 22u, 24u}) {
        table.addRow({std::to_string(bits),
                      fmt(hitRate(n, StrideDetection::CZONE, bits), 1)});
    }
    table.print(std::cout);

    std::cout << "\nThe czone must span at least ~2x the stride "
                 "(> 13 bits here) for three consecutive strided "
                 "references to share a partition.\n";
    return 0;
}
