# Empty dependencies file for streamsim_cli.
# This may be replaced when dependencies are built.
