file(REMOVE_RECURSE
  "libstreamsim_cli.a"
)
