file(REMOVE_RECURSE
  "CMakeFiles/streamsim_cli.dir/cli_commands.cc.o"
  "CMakeFiles/streamsim_cli.dir/cli_commands.cc.o.d"
  "CMakeFiles/streamsim_cli.dir/cli_options.cc.o"
  "CMakeFiles/streamsim_cli.dir/cli_options.cc.o.d"
  "libstreamsim_cli.a"
  "libstreamsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
