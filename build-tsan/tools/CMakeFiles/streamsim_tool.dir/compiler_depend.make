# Empty compiler generated dependencies file for streamsim_tool.
# This may be replaced when dependencies are built.
