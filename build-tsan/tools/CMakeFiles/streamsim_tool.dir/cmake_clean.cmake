file(REMOVE_RECURSE
  "CMakeFiles/streamsim_tool.dir/streamsim_main.cc.o"
  "CMakeFiles/streamsim_tool.dir/streamsim_main.cc.o.d"
  "streamsim"
  "streamsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamsim_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
