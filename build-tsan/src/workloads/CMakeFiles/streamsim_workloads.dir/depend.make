# Empty dependencies file for streamsim_workloads.
# This may be replaced when dependencies are built.
