file(REMOVE_RECURSE
  "libstreamsim_workloads.a"
)
