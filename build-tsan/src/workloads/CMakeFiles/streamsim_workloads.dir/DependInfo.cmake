
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/adm.cc" "src/workloads/CMakeFiles/streamsim_workloads.dir/adm.cc.o" "gcc" "src/workloads/CMakeFiles/streamsim_workloads.dir/adm.cc.o.d"
  "/root/repo/src/workloads/appbt.cc" "src/workloads/CMakeFiles/streamsim_workloads.dir/appbt.cc.o" "gcc" "src/workloads/CMakeFiles/streamsim_workloads.dir/appbt.cc.o.d"
  "/root/repo/src/workloads/applu.cc" "src/workloads/CMakeFiles/streamsim_workloads.dir/applu.cc.o" "gcc" "src/workloads/CMakeFiles/streamsim_workloads.dir/applu.cc.o.d"
  "/root/repo/src/workloads/appsp.cc" "src/workloads/CMakeFiles/streamsim_workloads.dir/appsp.cc.o" "gcc" "src/workloads/CMakeFiles/streamsim_workloads.dir/appsp.cc.o.d"
  "/root/repo/src/workloads/bdna.cc" "src/workloads/CMakeFiles/streamsim_workloads.dir/bdna.cc.o" "gcc" "src/workloads/CMakeFiles/streamsim_workloads.dir/bdna.cc.o.d"
  "/root/repo/src/workloads/benchmark.cc" "src/workloads/CMakeFiles/streamsim_workloads.dir/benchmark.cc.o" "gcc" "src/workloads/CMakeFiles/streamsim_workloads.dir/benchmark.cc.o.d"
  "/root/repo/src/workloads/cgm.cc" "src/workloads/CMakeFiles/streamsim_workloads.dir/cgm.cc.o" "gcc" "src/workloads/CMakeFiles/streamsim_workloads.dir/cgm.cc.o.d"
  "/root/repo/src/workloads/dyfesm.cc" "src/workloads/CMakeFiles/streamsim_workloads.dir/dyfesm.cc.o" "gcc" "src/workloads/CMakeFiles/streamsim_workloads.dir/dyfesm.cc.o.d"
  "/root/repo/src/workloads/embar.cc" "src/workloads/CMakeFiles/streamsim_workloads.dir/embar.cc.o" "gcc" "src/workloads/CMakeFiles/streamsim_workloads.dir/embar.cc.o.d"
  "/root/repo/src/workloads/fftpde.cc" "src/workloads/CMakeFiles/streamsim_workloads.dir/fftpde.cc.o" "gcc" "src/workloads/CMakeFiles/streamsim_workloads.dir/fftpde.cc.o.d"
  "/root/repo/src/workloads/is_bench.cc" "src/workloads/CMakeFiles/streamsim_workloads.dir/is_bench.cc.o" "gcc" "src/workloads/CMakeFiles/streamsim_workloads.dir/is_bench.cc.o.d"
  "/root/repo/src/workloads/mdg.cc" "src/workloads/CMakeFiles/streamsim_workloads.dir/mdg.cc.o" "gcc" "src/workloads/CMakeFiles/streamsim_workloads.dir/mdg.cc.o.d"
  "/root/repo/src/workloads/mgrid.cc" "src/workloads/CMakeFiles/streamsim_workloads.dir/mgrid.cc.o" "gcc" "src/workloads/CMakeFiles/streamsim_workloads.dir/mgrid.cc.o.d"
  "/root/repo/src/workloads/pattern.cc" "src/workloads/CMakeFiles/streamsim_workloads.dir/pattern.cc.o" "gcc" "src/workloads/CMakeFiles/streamsim_workloads.dir/pattern.cc.o.d"
  "/root/repo/src/workloads/qcd.cc" "src/workloads/CMakeFiles/streamsim_workloads.dir/qcd.cc.o" "gcc" "src/workloads/CMakeFiles/streamsim_workloads.dir/qcd.cc.o.d"
  "/root/repo/src/workloads/spec77.cc" "src/workloads/CMakeFiles/streamsim_workloads.dir/spec77.cc.o" "gcc" "src/workloads/CMakeFiles/streamsim_workloads.dir/spec77.cc.o.d"
  "/root/repo/src/workloads/trfd.cc" "src/workloads/CMakeFiles/streamsim_workloads.dir/trfd.cc.o" "gcc" "src/workloads/CMakeFiles/streamsim_workloads.dir/trfd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/trace/CMakeFiles/streamsim_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/streamsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
