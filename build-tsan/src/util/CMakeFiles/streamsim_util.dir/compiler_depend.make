# Empty compiler generated dependencies file for streamsim_util.
# This may be replaced when dependencies are built.
