file(REMOVE_RECURSE
  "CMakeFiles/streamsim_util.dir/logging.cc.o"
  "CMakeFiles/streamsim_util.dir/logging.cc.o.d"
  "CMakeFiles/streamsim_util.dir/stats.cc.o"
  "CMakeFiles/streamsim_util.dir/stats.cc.o.d"
  "CMakeFiles/streamsim_util.dir/table.cc.o"
  "CMakeFiles/streamsim_util.dir/table.cc.o.d"
  "libstreamsim_util.a"
  "libstreamsim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamsim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
