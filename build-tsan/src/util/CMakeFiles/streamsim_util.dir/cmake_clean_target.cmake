file(REMOVE_RECURSE
  "libstreamsim_util.a"
)
