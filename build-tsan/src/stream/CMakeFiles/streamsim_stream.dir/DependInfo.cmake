
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/czone_filter.cc" "src/stream/CMakeFiles/streamsim_stream.dir/czone_filter.cc.o" "gcc" "src/stream/CMakeFiles/streamsim_stream.dir/czone_filter.cc.o.d"
  "/root/repo/src/stream/min_delta.cc" "src/stream/CMakeFiles/streamsim_stream.dir/min_delta.cc.o" "gcc" "src/stream/CMakeFiles/streamsim_stream.dir/min_delta.cc.o.d"
  "/root/repo/src/stream/prefetch_engine.cc" "src/stream/CMakeFiles/streamsim_stream.dir/prefetch_engine.cc.o" "gcc" "src/stream/CMakeFiles/streamsim_stream.dir/prefetch_engine.cc.o.d"
  "/root/repo/src/stream/stream_buffer.cc" "src/stream/CMakeFiles/streamsim_stream.dir/stream_buffer.cc.o" "gcc" "src/stream/CMakeFiles/streamsim_stream.dir/stream_buffer.cc.o.d"
  "/root/repo/src/stream/stream_set.cc" "src/stream/CMakeFiles/streamsim_stream.dir/stream_set.cc.o" "gcc" "src/stream/CMakeFiles/streamsim_stream.dir/stream_set.cc.o.d"
  "/root/repo/src/stream/unit_filter.cc" "src/stream/CMakeFiles/streamsim_stream.dir/unit_filter.cc.o" "gcc" "src/stream/CMakeFiles/streamsim_stream.dir/unit_filter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/streamsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
