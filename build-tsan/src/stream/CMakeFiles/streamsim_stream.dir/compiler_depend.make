# Empty compiler generated dependencies file for streamsim_stream.
# This may be replaced when dependencies are built.
