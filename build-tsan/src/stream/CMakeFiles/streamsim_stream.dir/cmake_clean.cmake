file(REMOVE_RECURSE
  "CMakeFiles/streamsim_stream.dir/czone_filter.cc.o"
  "CMakeFiles/streamsim_stream.dir/czone_filter.cc.o.d"
  "CMakeFiles/streamsim_stream.dir/min_delta.cc.o"
  "CMakeFiles/streamsim_stream.dir/min_delta.cc.o.d"
  "CMakeFiles/streamsim_stream.dir/prefetch_engine.cc.o"
  "CMakeFiles/streamsim_stream.dir/prefetch_engine.cc.o.d"
  "CMakeFiles/streamsim_stream.dir/stream_buffer.cc.o"
  "CMakeFiles/streamsim_stream.dir/stream_buffer.cc.o.d"
  "CMakeFiles/streamsim_stream.dir/stream_set.cc.o"
  "CMakeFiles/streamsim_stream.dir/stream_set.cc.o.d"
  "CMakeFiles/streamsim_stream.dir/unit_filter.cc.o"
  "CMakeFiles/streamsim_stream.dir/unit_filter.cc.o.d"
  "libstreamsim_stream.a"
  "libstreamsim_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamsim_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
