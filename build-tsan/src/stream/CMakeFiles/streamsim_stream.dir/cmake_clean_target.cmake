file(REMOVE_RECURSE
  "libstreamsim_stream.a"
)
