file(REMOVE_RECURSE
  "CMakeFiles/streamsim_cache.dir/cache.cc.o"
  "CMakeFiles/streamsim_cache.dir/cache.cc.o.d"
  "CMakeFiles/streamsim_cache.dir/replacement.cc.o"
  "CMakeFiles/streamsim_cache.dir/replacement.cc.o.d"
  "libstreamsim_cache.a"
  "libstreamsim_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamsim_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
