file(REMOVE_RECURSE
  "libstreamsim_cache.a"
)
