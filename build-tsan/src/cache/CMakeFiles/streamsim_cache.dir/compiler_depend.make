# Empty compiler generated dependencies file for streamsim_cache.
# This may be replaced when dependencies are built.
