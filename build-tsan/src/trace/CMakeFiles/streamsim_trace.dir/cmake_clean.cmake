file(REMOVE_RECURSE
  "CMakeFiles/streamsim_trace.dir/file_trace.cc.o"
  "CMakeFiles/streamsim_trace.dir/file_trace.cc.o.d"
  "libstreamsim_trace.a"
  "libstreamsim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamsim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
