file(REMOVE_RECURSE
  "libstreamsim_trace.a"
)
