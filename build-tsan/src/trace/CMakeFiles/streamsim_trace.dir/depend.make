# Empty dependencies file for streamsim_trace.
# This may be replaced when dependencies are built.
