file(REMOVE_RECURSE
  "libstreamsim_baseline.a"
)
