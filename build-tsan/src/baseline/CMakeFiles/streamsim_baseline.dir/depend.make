# Empty dependencies file for streamsim_baseline.
# This may be replaced when dependencies are built.
