file(REMOVE_RECURSE
  "CMakeFiles/streamsim_baseline.dir/rpt.cc.o"
  "CMakeFiles/streamsim_baseline.dir/rpt.cc.o.d"
  "libstreamsim_baseline.a"
  "libstreamsim_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamsim_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
