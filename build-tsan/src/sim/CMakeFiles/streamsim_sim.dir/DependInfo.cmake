
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/experiment.cc" "src/sim/CMakeFiles/streamsim_sim.dir/experiment.cc.o" "gcc" "src/sim/CMakeFiles/streamsim_sim.dir/experiment.cc.o.d"
  "/root/repo/src/sim/l2_study.cc" "src/sim/CMakeFiles/streamsim_sim.dir/l2_study.cc.o" "gcc" "src/sim/CMakeFiles/streamsim_sim.dir/l2_study.cc.o.d"
  "/root/repo/src/sim/memory_system.cc" "src/sim/CMakeFiles/streamsim_sim.dir/memory_system.cc.o" "gcc" "src/sim/CMakeFiles/streamsim_sim.dir/memory_system.cc.o.d"
  "/root/repo/src/sim/sweep_runner.cc" "src/sim/CMakeFiles/streamsim_sim.dir/sweep_runner.cc.o" "gcc" "src/sim/CMakeFiles/streamsim_sim.dir/sweep_runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/cache/CMakeFiles/streamsim_cache.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/stream/CMakeFiles/streamsim_stream.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trace/CMakeFiles/streamsim_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/streamsim_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/workloads/CMakeFiles/streamsim_workloads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
