# Empty compiler generated dependencies file for streamsim_sim.
# This may be replaced when dependencies are built.
