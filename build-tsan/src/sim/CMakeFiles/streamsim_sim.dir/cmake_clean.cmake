file(REMOVE_RECURSE
  "CMakeFiles/streamsim_sim.dir/experiment.cc.o"
  "CMakeFiles/streamsim_sim.dir/experiment.cc.o.d"
  "CMakeFiles/streamsim_sim.dir/l2_study.cc.o"
  "CMakeFiles/streamsim_sim.dir/l2_study.cc.o.d"
  "CMakeFiles/streamsim_sim.dir/memory_system.cc.o"
  "CMakeFiles/streamsim_sim.dir/memory_system.cc.o.d"
  "CMakeFiles/streamsim_sim.dir/sweep_runner.cc.o"
  "CMakeFiles/streamsim_sim.dir/sweep_runner.cc.o.d"
  "libstreamsim_sim.a"
  "libstreamsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
