file(REMOVE_RECURSE
  "libstreamsim_sim.a"
)
