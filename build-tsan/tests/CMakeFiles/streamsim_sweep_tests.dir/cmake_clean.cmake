file(REMOVE_RECURSE
  "CMakeFiles/streamsim_sweep_tests.dir/test_golden_sweep.cc.o"
  "CMakeFiles/streamsim_sweep_tests.dir/test_golden_sweep.cc.o.d"
  "CMakeFiles/streamsim_sweep_tests.dir/test_sweep_runner.cc.o"
  "CMakeFiles/streamsim_sweep_tests.dir/test_sweep_runner.cc.o.d"
  "streamsim_sweep_tests"
  "streamsim_sweep_tests.pdb"
  "streamsim_sweep_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamsim_sweep_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
