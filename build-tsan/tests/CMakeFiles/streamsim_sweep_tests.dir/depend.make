# Empty dependencies file for streamsim_sweep_tests.
# This may be replaced when dependencies are built.
