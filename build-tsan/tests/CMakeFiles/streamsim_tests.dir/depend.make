# Empty dependencies file for streamsim_tests.
# This may be replaced when dependencies are built.
