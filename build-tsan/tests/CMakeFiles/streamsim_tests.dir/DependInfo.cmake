
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_benchmarks.cc" "tests/CMakeFiles/streamsim_tests.dir/test_benchmarks.cc.o" "gcc" "tests/CMakeFiles/streamsim_tests.dir/test_benchmarks.cc.o.d"
  "/root/repo/tests/test_bitutil.cc" "tests/CMakeFiles/streamsim_tests.dir/test_bitutil.cc.o" "gcc" "tests/CMakeFiles/streamsim_tests.dir/test_bitutil.cc.o.d"
  "/root/repo/tests/test_block.cc" "tests/CMakeFiles/streamsim_tests.dir/test_block.cc.o" "gcc" "tests/CMakeFiles/streamsim_tests.dir/test_block.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/streamsim_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/streamsim_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_cache_differential.cc" "tests/CMakeFiles/streamsim_tests.dir/test_cache_differential.cc.o" "gcc" "tests/CMakeFiles/streamsim_tests.dir/test_cache_differential.cc.o.d"
  "/root/repo/tests/test_calibration_pins.cc" "tests/CMakeFiles/streamsim_tests.dir/test_calibration_pins.cc.o" "gcc" "tests/CMakeFiles/streamsim_tests.dir/test_calibration_pins.cc.o.d"
  "/root/repo/tests/test_cli.cc" "tests/CMakeFiles/streamsim_tests.dir/test_cli.cc.o" "gcc" "tests/CMakeFiles/streamsim_tests.dir/test_cli.cc.o.d"
  "/root/repo/tests/test_czone_filter.cc" "tests/CMakeFiles/streamsim_tests.dir/test_czone_filter.cc.o" "gcc" "tests/CMakeFiles/streamsim_tests.dir/test_czone_filter.cc.o.d"
  "/root/repo/tests/test_experiment.cc" "tests/CMakeFiles/streamsim_tests.dir/test_experiment.cc.o" "gcc" "tests/CMakeFiles/streamsim_tests.dir/test_experiment.cc.o.d"
  "/root/repo/tests/test_fuzz.cc" "tests/CMakeFiles/streamsim_tests.dir/test_fuzz.cc.o" "gcc" "tests/CMakeFiles/streamsim_tests.dir/test_fuzz.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/streamsim_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/streamsim_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_l2_study.cc" "tests/CMakeFiles/streamsim_tests.dir/test_l2_study.cc.o" "gcc" "tests/CMakeFiles/streamsim_tests.dir/test_l2_study.cc.o.d"
  "/root/repo/tests/test_l2_system.cc" "tests/CMakeFiles/streamsim_tests.dir/test_l2_system.cc.o" "gcc" "tests/CMakeFiles/streamsim_tests.dir/test_l2_system.cc.o.d"
  "/root/repo/tests/test_logging.cc" "tests/CMakeFiles/streamsim_tests.dir/test_logging.cc.o" "gcc" "tests/CMakeFiles/streamsim_tests.dir/test_logging.cc.o.d"
  "/root/repo/tests/test_main_memory.cc" "tests/CMakeFiles/streamsim_tests.dir/test_main_memory.cc.o" "gcc" "tests/CMakeFiles/streamsim_tests.dir/test_main_memory.cc.o.d"
  "/root/repo/tests/test_memory_system.cc" "tests/CMakeFiles/streamsim_tests.dir/test_memory_system.cc.o" "gcc" "tests/CMakeFiles/streamsim_tests.dir/test_memory_system.cc.o.d"
  "/root/repo/tests/test_min_delta.cc" "tests/CMakeFiles/streamsim_tests.dir/test_min_delta.cc.o" "gcc" "tests/CMakeFiles/streamsim_tests.dir/test_min_delta.cc.o.d"
  "/root/repo/tests/test_pattern.cc" "tests/CMakeFiles/streamsim_tests.dir/test_pattern.cc.o" "gcc" "tests/CMakeFiles/streamsim_tests.dir/test_pattern.cc.o.d"
  "/root/repo/tests/test_prefetch_engine.cc" "tests/CMakeFiles/streamsim_tests.dir/test_prefetch_engine.cc.o" "gcc" "tests/CMakeFiles/streamsim_tests.dir/test_prefetch_engine.cc.o.d"
  "/root/repo/tests/test_random.cc" "tests/CMakeFiles/streamsim_tests.dir/test_random.cc.o" "gcc" "tests/CMakeFiles/streamsim_tests.dir/test_random.cc.o.d"
  "/root/repo/tests/test_replacement.cc" "tests/CMakeFiles/streamsim_tests.dir/test_replacement.cc.o" "gcc" "tests/CMakeFiles/streamsim_tests.dir/test_replacement.cc.o.d"
  "/root/repo/tests/test_rpt.cc" "tests/CMakeFiles/streamsim_tests.dir/test_rpt.cc.o" "gcc" "tests/CMakeFiles/streamsim_tests.dir/test_rpt.cc.o.d"
  "/root/repo/tests/test_set_sampler.cc" "tests/CMakeFiles/streamsim_tests.dir/test_set_sampler.cc.o" "gcc" "tests/CMakeFiles/streamsim_tests.dir/test_set_sampler.cc.o.d"
  "/root/repo/tests/test_split_cache.cc" "tests/CMakeFiles/streamsim_tests.dir/test_split_cache.cc.o" "gcc" "tests/CMakeFiles/streamsim_tests.dir/test_split_cache.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/streamsim_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/streamsim_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_stream_buffer.cc" "tests/CMakeFiles/streamsim_tests.dir/test_stream_buffer.cc.o" "gcc" "tests/CMakeFiles/streamsim_tests.dir/test_stream_buffer.cc.o.d"
  "/root/repo/tests/test_stream_replacement.cc" "tests/CMakeFiles/streamsim_tests.dir/test_stream_replacement.cc.o" "gcc" "tests/CMakeFiles/streamsim_tests.dir/test_stream_replacement.cc.o.d"
  "/root/repo/tests/test_stream_set.cc" "tests/CMakeFiles/streamsim_tests.dir/test_stream_set.cc.o" "gcc" "tests/CMakeFiles/streamsim_tests.dir/test_stream_set.cc.o.d"
  "/root/repo/tests/test_sw_prefetch.cc" "tests/CMakeFiles/streamsim_tests.dir/test_sw_prefetch.cc.o" "gcc" "tests/CMakeFiles/streamsim_tests.dir/test_sw_prefetch.cc.o.d"
  "/root/repo/tests/test_table.cc" "tests/CMakeFiles/streamsim_tests.dir/test_table.cc.o" "gcc" "tests/CMakeFiles/streamsim_tests.dir/test_table.cc.o.d"
  "/root/repo/tests/test_time_sampler.cc" "tests/CMakeFiles/streamsim_tests.dir/test_time_sampler.cc.o" "gcc" "tests/CMakeFiles/streamsim_tests.dir/test_time_sampler.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/streamsim_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/streamsim_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_translation.cc" "tests/CMakeFiles/streamsim_tests.dir/test_translation.cc.o" "gcc" "tests/CMakeFiles/streamsim_tests.dir/test_translation.cc.o.d"
  "/root/repo/tests/test_unit_filter.cc" "tests/CMakeFiles/streamsim_tests.dir/test_unit_filter.cc.o" "gcc" "tests/CMakeFiles/streamsim_tests.dir/test_unit_filter.cc.o.d"
  "/root/repo/tests/test_victim_buffer.cc" "tests/CMakeFiles/streamsim_tests.dir/test_victim_buffer.cc.o" "gcc" "tests/CMakeFiles/streamsim_tests.dir/test_victim_buffer.cc.o.d"
  "/root/repo/tests/test_victim_system.cc" "tests/CMakeFiles/streamsim_tests.dir/test_victim_system.cc.o" "gcc" "tests/CMakeFiles/streamsim_tests.dir/test_victim_system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/tools/CMakeFiles/streamsim_cli.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/streamsim_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/stream/CMakeFiles/streamsim_stream.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/workloads/CMakeFiles/streamsim_workloads.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/baseline/CMakeFiles/streamsim_baseline.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trace/CMakeFiles/streamsim_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cache/CMakeFiles/streamsim_cache.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/streamsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
