# Empty dependencies file for czone_tuner.
# This may be replaced when dependencies are built.
