file(REMOVE_RECURSE
  "CMakeFiles/czone_tuner.dir/czone_tuner.cpp.o"
  "CMakeFiles/czone_tuner.dir/czone_tuner.cpp.o.d"
  "czone_tuner"
  "czone_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/czone_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
