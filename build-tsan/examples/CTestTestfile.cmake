# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-tsan/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build-tsan/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  LABELS "examples" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;10;add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_matrix_traversal "/root/repo/build-tsan/examples/matrix_traversal")
set_tests_properties(example_matrix_traversal PROPERTIES  LABELS "examples" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;11;add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bandwidth_tuning "/root/repo/build-tsan/examples/bandwidth_tuning")
set_tests_properties(example_bandwidth_tuning PROPERTIES  LABELS "examples" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;12;add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_tools "/root/repo/build-tsan/examples/trace_tools")
set_tests_properties(example_trace_tools PROPERTIES  LABELS "examples" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;13;add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_czone_tuner "/root/repo/build-tsan/examples/czone_tuner")
set_tests_properties(example_czone_tuner PROPERTIES  LABELS "examples" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;14;add_example;/root/repo/examples/CMakeLists.txt;0;")
