# Empty dependencies file for software_prefetch.
# This may be replaced when dependencies are built.
