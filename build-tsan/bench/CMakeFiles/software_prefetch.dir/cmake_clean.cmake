file(REMOVE_RECURSE
  "CMakeFiles/software_prefetch.dir/bench_common.cc.o"
  "CMakeFiles/software_prefetch.dir/bench_common.cc.o.d"
  "CMakeFiles/software_prefetch.dir/software_prefetch.cc.o"
  "CMakeFiles/software_prefetch.dir/software_prefetch.cc.o.d"
  "software_prefetch"
  "software_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/software_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
