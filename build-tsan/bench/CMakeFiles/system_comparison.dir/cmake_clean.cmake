file(REMOVE_RECURSE
  "CMakeFiles/system_comparison.dir/bench_common.cc.o"
  "CMakeFiles/system_comparison.dir/bench_common.cc.o.d"
  "CMakeFiles/system_comparison.dir/system_comparison.cc.o"
  "CMakeFiles/system_comparison.dir/system_comparison.cc.o.d"
  "system_comparison"
  "system_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
