file(REMOVE_RECURSE
  "CMakeFiles/bandwidth_study.dir/bandwidth_study.cc.o"
  "CMakeFiles/bandwidth_study.dir/bandwidth_study.cc.o.d"
  "CMakeFiles/bandwidth_study.dir/bench_common.cc.o"
  "CMakeFiles/bandwidth_study.dir/bench_common.cc.o.d"
  "bandwidth_study"
  "bandwidth_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bandwidth_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
