# Empty dependencies file for fig8_nonunit_stride.
# This may be replaced when dependencies are built.
