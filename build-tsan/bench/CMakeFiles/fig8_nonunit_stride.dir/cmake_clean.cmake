file(REMOVE_RECURSE
  "CMakeFiles/fig8_nonunit_stride.dir/bench_common.cc.o"
  "CMakeFiles/fig8_nonunit_stride.dir/bench_common.cc.o.d"
  "CMakeFiles/fig8_nonunit_stride.dir/fig8_nonunit_stride.cc.o"
  "CMakeFiles/fig8_nonunit_stride.dir/fig8_nonunit_stride.cc.o.d"
  "fig8_nonunit_stride"
  "fig8_nonunit_stride.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_nonunit_stride.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
