# Empty dependencies file for fig9_czone_sweep.
# This may be replaced when dependencies are built.
