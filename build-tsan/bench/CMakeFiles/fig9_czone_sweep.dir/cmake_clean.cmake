file(REMOVE_RECURSE
  "CMakeFiles/fig9_czone_sweep.dir/bench_common.cc.o"
  "CMakeFiles/fig9_czone_sweep.dir/bench_common.cc.o.d"
  "CMakeFiles/fig9_czone_sweep.dir/fig9_czone_sweep.cc.o"
  "CMakeFiles/fig9_czone_sweep.dir/fig9_czone_sweep.cc.o.d"
  "fig9_czone_sweep"
  "fig9_czone_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_czone_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
