# Empty dependencies file for fig3_streams_sweep.
# This may be replaced when dependencies are built.
