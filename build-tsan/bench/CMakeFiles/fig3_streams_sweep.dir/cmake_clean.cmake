file(REMOVE_RECURSE
  "CMakeFiles/fig3_streams_sweep.dir/bench_common.cc.o"
  "CMakeFiles/fig3_streams_sweep.dir/bench_common.cc.o.d"
  "CMakeFiles/fig3_streams_sweep.dir/fig3_streams_sweep.cc.o"
  "CMakeFiles/fig3_streams_sweep.dir/fig3_streams_sweep.cc.o.d"
  "fig3_streams_sweep"
  "fig3_streams_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_streams_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
