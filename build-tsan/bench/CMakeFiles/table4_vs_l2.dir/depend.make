# Empty dependencies file for table4_vs_l2.
# This may be replaced when dependencies are built.
