file(REMOVE_RECURSE
  "CMakeFiles/table4_vs_l2.dir/bench_common.cc.o"
  "CMakeFiles/table4_vs_l2.dir/bench_common.cc.o.d"
  "CMakeFiles/table4_vs_l2.dir/table4_vs_l2.cc.o"
  "CMakeFiles/table4_vs_l2.dir/table4_vs_l2.cc.o.d"
  "table4_vs_l2"
  "table4_vs_l2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_vs_l2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
