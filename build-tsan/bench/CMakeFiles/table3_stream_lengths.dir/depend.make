# Empty dependencies file for table3_stream_lengths.
# This may be replaced when dependencies are built.
