file(REMOVE_RECURSE
  "CMakeFiles/table3_stream_lengths.dir/bench_common.cc.o"
  "CMakeFiles/table3_stream_lengths.dir/bench_common.cc.o.d"
  "CMakeFiles/table3_stream_lengths.dir/table3_stream_lengths.cc.o"
  "CMakeFiles/table3_stream_lengths.dir/table3_stream_lengths.cc.o.d"
  "table3_stream_lengths"
  "table3_stream_lengths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_stream_lengths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
