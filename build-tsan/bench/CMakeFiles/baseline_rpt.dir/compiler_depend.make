# Empty compiler generated dependencies file for baseline_rpt.
# This may be replaced when dependencies are built.
