file(REMOVE_RECURSE
  "CMakeFiles/baseline_rpt.dir/baseline_rpt.cc.o"
  "CMakeFiles/baseline_rpt.dir/baseline_rpt.cc.o.d"
  "CMakeFiles/baseline_rpt.dir/bench_common.cc.o"
  "CMakeFiles/baseline_rpt.dir/bench_common.cc.o.d"
  "baseline_rpt"
  "baseline_rpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_rpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
