file(REMOVE_RECURSE
  "CMakeFiles/table2_extra_bandwidth.dir/bench_common.cc.o"
  "CMakeFiles/table2_extra_bandwidth.dir/bench_common.cc.o.d"
  "CMakeFiles/table2_extra_bandwidth.dir/table2_extra_bandwidth.cc.o"
  "CMakeFiles/table2_extra_bandwidth.dir/table2_extra_bandwidth.cc.o.d"
  "table2_extra_bandwidth"
  "table2_extra_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_extra_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
