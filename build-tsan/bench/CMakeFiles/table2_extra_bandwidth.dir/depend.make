# Empty dependencies file for table2_extra_bandwidth.
# This may be replaced when dependencies are built.
