
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_common.cc" "bench/CMakeFiles/fig5_filter.dir/bench_common.cc.o" "gcc" "bench/CMakeFiles/fig5_filter.dir/bench_common.cc.o.d"
  "/root/repo/bench/fig5_filter.cc" "bench/CMakeFiles/fig5_filter.dir/fig5_filter.cc.o" "gcc" "bench/CMakeFiles/fig5_filter.dir/fig5_filter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/sim/CMakeFiles/streamsim_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/stream/CMakeFiles/streamsim_stream.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/workloads/CMakeFiles/streamsim_workloads.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/baseline/CMakeFiles/streamsim_baseline.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trace/CMakeFiles/streamsim_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cache/CMakeFiles/streamsim_cache.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/streamsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
