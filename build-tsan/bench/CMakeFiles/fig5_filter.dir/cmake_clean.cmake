file(REMOVE_RECURSE
  "CMakeFiles/fig5_filter.dir/bench_common.cc.o"
  "CMakeFiles/fig5_filter.dir/bench_common.cc.o.d"
  "CMakeFiles/fig5_filter.dir/fig5_filter.cc.o"
  "CMakeFiles/fig5_filter.dir/fig5_filter.cc.o.d"
  "fig5_filter"
  "fig5_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
