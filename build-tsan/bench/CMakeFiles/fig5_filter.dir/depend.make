# Empty dependencies file for fig5_filter.
# This may be replaced when dependencies are built.
